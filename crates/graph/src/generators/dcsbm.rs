//! Degree-corrected stochastic block model (DC-SBM) generator.
//!
//! The paper's Table 2 graphs are globally power-law with one hub core. Real
//! social and web graphs additionally have *community structure*: dense
//! blocks with sparse connections between them (Karrer & Newman, "Stochastic
//! blockmodels and community structure in networks", 2011). Community
//! boundaries are what makes sampling hard in practice — a walk that enters a
//! dense block mixes inside it and rarely crosses to the next one, so a small
//! sample can miss entire communities and the sample's convergence behavior
//! diverges from the full graph's. The degree-corrected variant keeps a
//! power-law degree *propensity* inside every block, so the graph is
//! simultaneously clustered and heavy-tailed — the combination the
//! `table2_new_datasets` / `fig9_new_generators` experiment binaries use to
//! stress samplers beyond the paper's datasets (ROADMAP "degree-corrected
//! block model" item).
//!
//! Vertices are split into [`DcsbmConfig::num_blocks`] contiguous blocks.
//! Each endpoint of an edge is drawn proportionally to its vertex's
//! propensity `θ_v = (rank within block + 1)^-gamma`; the destination stays
//! in the source's block with probability
//! [`DcsbmConfig::within_probability`], otherwise it lands in a uniformly
//! chosen other block. Self-loops are dropped and duplicates removed;
//! deterministic for a fixed seed.

use crate::csr::CsrGraph;
use crate::edge_list::EdgeList;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate_dcsbm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcsbmConfig {
    /// Number of vertices (split into `num_blocks` contiguous blocks).
    pub num_vertices: usize,
    /// Number of communities.
    pub num_blocks: usize,
    /// Average out-degree; `avg_degree * num_vertices` edges are drawn before
    /// self-loop removal and deduplication.
    pub avg_degree: usize,
    /// Probability that an edge stays inside its source's block (the
    /// assortativity knob). Defaults to 0.8.
    pub within_probability: f64,
    /// Exponent of the per-vertex degree propensity
    /// `θ = (rank + 1)^-gamma`; 0.0 = plain SBM, larger = heavier-tailed
    /// degrees. Defaults to 0.7.
    pub gamma: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl DcsbmConfig {
    /// Creates a DC-SBM config with the default mixing and propensity
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics unless there are at least two blocks and at least one vertex
    /// per block.
    pub fn new(num_vertices: usize, num_blocks: usize, avg_degree: usize) -> Self {
        assert!(
            num_blocks >= 2,
            "need at least two blocks, got {num_blocks}"
        );
        assert!(
            num_vertices >= num_blocks,
            "need at least one vertex per block ({num_vertices} vertices, {num_blocks} blocks)"
        );
        Self {
            num_vertices,
            num_blocks,
            avg_degree,
            within_probability: 0.8,
            gamma: 0.7,
            seed: 0,
        }
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the within-block edge probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < within_probability <= 1`.
    pub fn with_within_probability(mut self, p: f64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "within probability must be in (0, 1], got {p}"
        );
        self.within_probability = p;
        self
    }

    /// Overrides the degree-propensity exponent.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is negative.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        assert!(gamma >= 0.0, "gamma must be non-negative, got {gamma}");
        self.gamma = gamma;
        self
    }

    /// Block of vertex `v` (blocks are contiguous id ranges).
    ///
    /// Matches the generator's partition exactly: block `b` spans
    /// `floor(b * n / k)..floor((b + 1) * n / k)`, so this is the smallest
    /// `b` with `v < floor((b + 1) * n / k)` — important when `n` is not
    /// divisible by `k`, where a naive `v * k / n` would misassign the
    /// boundary vertices.
    pub fn block_of(&self, v: VertexId) -> usize {
        ((v as usize + 1) * self.num_blocks - 1) / self.num_vertices
    }
}

/// Per-block cumulative propensity weights for O(log n) weighted draws.
struct BlockWeights {
    /// Start vertex id of each block (length `num_blocks + 1`).
    starts: Vec<usize>,
    /// Per-block cumulative `θ` sums, indexed by rank within the block.
    cumulative: Vec<Vec<f64>>,
}

impl BlockWeights {
    fn build(config: &DcsbmConfig) -> Self {
        let (n, k) = (config.num_vertices, config.num_blocks);
        let starts: Vec<usize> = (0..=k).map(|b| b * n / k).collect();
        let cumulative = (0..k)
            .map(|b| {
                let size = starts[b + 1] - starts[b];
                let mut acc = 0.0;
                (0..size)
                    .map(|rank| {
                        acc += ((rank + 1) as f64).powf(-config.gamma);
                        acc
                    })
                    .collect()
            })
            .collect();
        Self { starts, cumulative }
    }

    /// Draws a vertex from `block` proportionally to its propensity.
    fn draw(&self, block: usize, rng: &mut StdRng) -> VertexId {
        let cum = &self.cumulative[block];
        let total = *cum.last().expect("blocks are non-empty");
        let r: f64 = rng.gen_range(0.0..total);
        let rank = cum.partition_point(|&c| c <= r).min(cum.len() - 1);
        (self.starts[block] + rank) as VertexId
    }
}

/// Generates a degree-corrected stochastic block model graph.
pub fn generate_dcsbm(config: &DcsbmConfig) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let weights = BlockWeights::build(config);
    let target = config.avg_degree * config.num_vertices;
    let mut edges = EdgeList::with_capacity(target);
    edges.ensure_vertices(config.num_vertices);

    for _ in 0..target {
        let src_block = rng.gen_range(0..config.num_blocks);
        let src = weights.draw(src_block, &mut rng);
        let dst_block = if rng.gen_bool(config.within_probability) {
            src_block
        } else {
            // A uniformly chosen *other* block.
            let other = rng.gen_range(0..config.num_blocks - 1);
            if other >= src_block {
                other + 1
            } else {
                other
            }
        };
        let dst = weights.draw(dst_block, &mut rng);
        if src != dst {
            edges.push(src, dst);
        }
    }
    edges.dedup();
    CsrGraph::from_edge_list(&edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_shape() {
        let cfg = DcsbmConfig::new(1000, 4, 8).with_seed(1);
        let g = generate_dcsbm(&cfg);
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.num_edges() > 0);
        assert!(g.num_edges() <= 8000);
    }

    #[test]
    fn edges_are_assortative() {
        let cfg = DcsbmConfig::new(2000, 4, 10).with_seed(2);
        let g = generate_dcsbm(&cfg);
        let within = g
            .edges()
            .filter(|&(s, d, _)| cfg.block_of(s) == cfg.block_of(d))
            .count();
        let frac = within as f64 / g.num_edges() as f64;
        // within_probability is 0.8 before dedup; allow slack for the
        // deduplication removing proportionally more of the dense
        // within-block duplicates.
        assert!(frac > 0.6, "within-block fraction too low: {frac}");
    }

    #[test]
    fn degree_correction_grows_hubs() {
        let heavy = generate_dcsbm(&DcsbmConfig::new(2000, 4, 10).with_seed(3).with_gamma(0.9));
        let flat = generate_dcsbm(&DcsbmConfig::new(2000, 4, 10).with_seed(3).with_gamma(0.0));
        let max_deg = |g: &CsrGraph| g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        assert!(
            max_deg(&heavy) > max_deg(&flat) * 2,
            "gamma should concentrate degree (heavy {}, flat {})",
            max_deg(&heavy),
            max_deg(&flat)
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = DcsbmConfig::new(512, 4, 6).with_seed(11);
        let a = generate_dcsbm(&cfg);
        let b = generate_dcsbm(&cfg);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.vertices() {
            assert_eq!(a.out_neighbors(v), b.out_neighbors(v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_dcsbm(&DcsbmConfig::new(512, 4, 6).with_seed(1));
        let b = generate_dcsbm(&DcsbmConfig::new(512, 4, 6).with_seed(2));
        let same = a
            .vertices()
            .all(|v| a.out_neighbors(v) == b.out_neighbors(v));
        assert!(!same, "seeds 1 and 2 produced identical graphs");
    }

    #[test]
    fn no_self_loops() {
        let g = generate_dcsbm(&DcsbmConfig::new(400, 4, 6).with_seed(5));
        for v in g.vertices() {
            assert!(!g.out_neighbors(v).contains(&v));
        }
    }

    #[test]
    fn block_of_partitions_contiguously() {
        // Non-divisible n/k: boundaries must match the generator's
        // `starts[b] = b * n / k` partition ([0, 3, 6, 10] here).
        let cfg = DcsbmConfig::new(10, 3, 2);
        let blocks: Vec<usize> = (0..10).map(|v| cfg.block_of(v)).collect();
        assert_eq!(blocks, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn block_of_agrees_with_generator_partition() {
        for (n, k) in [(10usize, 3usize), (17, 4), (100, 7), (64, 8)] {
            let cfg = DcsbmConfig::new(n, k, 2);
            let weights = BlockWeights::build(&cfg);
            for b in 0..k {
                for v in weights.starts[b]..weights.starts[b + 1] {
                    assert_eq!(
                        cfg.block_of(v as VertexId),
                        b,
                        "vertex {v} of n={n} k={k} misassigned"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two blocks")]
    fn one_block_panics() {
        let _ = DcsbmConfig::new(100, 1, 4);
    }
}
