//! Erdős–Rényi G(n, m) random graph generator.
//!
//! Uniform random graphs have a binomial (approximately Poisson) degree
//! distribution with no hubs. The paper observes (footnote 7, citing Leskovec
//! et al.) that the LiveJournal graph's out-degree distribution is *not* a
//! power law and that PREDIcT's sampling-based prediction is consistently less
//! accurate on it; the LiveJournal analog in [`datasets`](crate::datasets)
//! therefore mixes an Erdős–Rényi core with a small preferential component.

use crate::csr::CsrGraph;
use crate::edge_list::EdgeList;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate_erdos_renyi`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErdosRenyiConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges to generate (G(n, m) model).
    pub num_edges: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl ErdosRenyiConfig {
    /// Creates a G(n, m) config.
    pub fn new(num_vertices: usize, num_edges: usize) -> Self {
        Self {
            num_vertices,
            num_edges,
            seed: 0,
        }
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a directed G(n, m) Erdős–Rényi graph: `num_edges` edges drawn
/// uniformly at random without self-loops. Duplicate edges are allowed (they
/// are rare for sparse graphs and harmless to the algorithms).
///
/// # Panics
///
/// Panics if `num_vertices < 2`.
pub fn generate_erdos_renyi(config: &ErdosRenyiConfig) -> CsrGraph {
    assert!(config.num_vertices >= 2, "need at least two vertices");
    let n = config.num_vertices;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut edges = EdgeList::with_capacity(config.num_edges);
    edges.ensure_vertices(n);

    while edges.num_edges() < config.num_edges {
        let src = rng.gen_range(0..n) as VertexId;
        let dst = rng.gen_range(0..n) as VertexId;
        if src != dst {
            edges.push(src, dst);
        }
    }
    CsrGraph::from_edge_list(&edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = generate_erdos_renyi(&ErdosRenyiConfig::new(100, 500).with_seed(1));
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn no_self_loops() {
        let g = generate_erdos_renyi(&ErdosRenyiConfig::new(50, 400).with_seed(2));
        for v in g.vertices() {
            assert!(!g.out_neighbors(v).contains(&v));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = ErdosRenyiConfig::new(64, 256).with_seed(11);
        let a = generate_erdos_renyi(&cfg);
        let b = generate_erdos_renyi(&cfg);
        for v in a.vertices() {
            assert_eq!(a.out_neighbors(v), b.out_neighbors(v));
        }
    }

    #[test]
    fn degrees_are_concentrated_around_the_mean() {
        let g = generate_erdos_renyi(&ErdosRenyiConfig::new(2000, 20_000).with_seed(3));
        let avg = g.avg_degree();
        let max = g.vertices().map(|v| g.out_degree(v)).max().unwrap() as f64;
        // A Poisson-like distribution with mean 10 has no vertex anywhere near
        // 10x the mean (contrast with the R-MAT hub test).
        assert!(max < avg * 5.0, "unexpected hub: max {max}, avg {avg}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_graph_panics() {
        let _ = generate_erdos_renyi(&ErdosRenyiConfig::new(1, 0));
    }
}
