//! 2-D lattice road-network generator.
//!
//! Road networks are the structural opposite of the paper's Table 2 web/social
//! graphs: near-planar, effectively uniform degree (≤ 4), **no hub core** and
//! a very large effective diameter (`O(width + height)` instead of the
//! small-world `O(log n)`). They stress exactly the assumptions PREDIcT's
//! default sampler leans on — Biased Random Jump restarts from the highest
//! out-degree vertices, but on a road grid every vertex looks alike, so walk
//! bias buys nothing and iterative algorithms (PageRank, connected
//! components) need many more supersteps to propagate information across the
//! graph. The `table2_new_datasets` / `fig9_new_generators` experiment
//! binaries use this generator to measure how the prediction error behaves in
//! that regime (ROADMAP "road networks" item).
//!
//! The generator produces a `width × height` grid of intersections. Each
//! lattice edge (to the right and downward neighbor) is kept with probability
//! [`GridRoadConfig::keep_probability`] — dropped edges model rivers, ridges
//! and dead ends, which keeps the degree distribution irregular enough to be
//! interesting — and every kept road is two-way (both directions are added).
//! Deterministic for a fixed seed.

use crate::csr::CsrGraph;
use crate::edge_list::EdgeList;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate_grid_road`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridRoadConfig {
    /// Number of intersections per row.
    pub width: usize,
    /// Number of rows.
    pub height: usize,
    /// Probability that a lattice edge exists (defaults to 0.92; 1.0 yields
    /// the full grid).
    pub keep_probability: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl GridRoadConfig {
    /// Creates a `width × height` grid config with the default keep
    /// probability.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are at least 2.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width >= 2 && height >= 2,
            "grid needs at least 2x2 intersections, got {width}x{height}"
        );
        Self {
            width,
            height,
            keep_probability: 0.92,
            seed: 0,
        }
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the probability that a lattice edge exists.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < keep_probability <= 1`.
    pub fn with_keep_probability(mut self, p: f64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "keep probability must be in (0, 1], got {p}"
        );
        self.keep_probability = p;
        self
    }

    /// Number of vertices the generated graph will have.
    pub fn num_vertices(&self) -> usize {
        self.width * self.height
    }
}

/// Generates a 2-D lattice road network according to `config`.
///
/// Vertex ids are row-major (`id = y * width + x`). Every kept lattice edge
/// appears in both directions, so the graph is symmetric and every vertex has
/// out-degree equal to its in-degree (at most 4).
pub fn generate_grid_road(config: &GridRoadConfig) -> CsrGraph {
    let (w, h) = (config.width, config.height);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut edges = EdgeList::with_capacity(4 * w * h);
    edges.ensure_vertices(w * h);

    let keep =
        |rng: &mut StdRng| config.keep_probability >= 1.0 || rng.gen_bool(config.keep_probability);
    for y in 0..h {
        for x in 0..w {
            let v = (y * w + x) as VertexId;
            if x + 1 < w && keep(&mut rng) {
                let right = v + 1;
                edges.push(v, right);
                edges.push(right, v);
            }
            if y + 1 < h && keep(&mut rng) {
                let down = v + w as VertexId;
                edges.push(v, down);
                edges.push(down, v);
            }
        }
    }
    CsrGraph::from_edge_list(&edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_has_exact_counts() {
        let g = generate_grid_road(&GridRoadConfig::new(10, 8).with_keep_probability(1.0));
        assert_eq!(g.num_vertices(), 80);
        // Undirected lattice edges: (w-1)*h horizontal + w*(h-1) vertical,
        // each stored in both directions.
        assert_eq!(g.num_edges(), 2 * (9 * 8 + 10 * 7));
    }

    #[test]
    fn degrees_are_bounded_by_four() {
        let g = generate_grid_road(&GridRoadConfig::new(16, 16).with_seed(3));
        for v in g.vertices() {
            assert!(g.out_degree(v) <= 4);
            assert_eq!(g.out_degree(v), g.in_degree(v));
        }
    }

    #[test]
    fn edges_are_symmetric() {
        let g = generate_grid_road(&GridRoadConfig::new(12, 9).with_seed(5));
        for v in g.vertices() {
            for &u in g.out_neighbors(v) {
                assert!(g.out_neighbors(u).contains(&v), "missing reverse {u}->{v}");
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = GridRoadConfig::new(20, 20).with_seed(42);
        let a = generate_grid_road(&cfg);
        let b = generate_grid_road(&cfg);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.vertices() {
            assert_eq!(a.out_neighbors(v), b.out_neighbors(v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_grid_road(&GridRoadConfig::new(20, 20).with_seed(1));
        let b = generate_grid_road(&GridRoadConfig::new(20, 20).with_seed(2));
        assert_ne!(
            a.to_edge_list().edges(),
            b.to_edge_list().edges(),
            "seeds 1 and 2 produced identical grids"
        );
    }

    #[test]
    fn no_hubs_unlike_rmat() {
        let g = generate_grid_road(&GridRoadConfig::new(32, 32).with_seed(7));
        let max = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        assert!(max <= 4, "grid road must not grow hubs, got degree {max}");
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_dimensions_panic() {
        let _ = GridRoadConfig::new(1, 5);
    }
}
