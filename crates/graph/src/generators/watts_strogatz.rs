//! Watts–Strogatz small-world generator.
//!
//! Starts from a ring lattice where every vertex is connected to its `k`
//! nearest neighbors and rewires each edge with probability `beta` to a random
//! destination. Low `beta` keeps the high clustering coefficient of the
//! lattice; even small `beta` collapses the diameter. These graphs are used in
//! tests that check the samplers' ability to preserve clustering coefficient
//! and effective diameter — two of the properties the paper lists as sampling
//! requirements.

use crate::csr::CsrGraph;
use crate::edge_list::EdgeList;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate_watts_strogatz`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WattsStrogatzConfig {
    /// Number of vertices on the ring.
    pub num_vertices: usize,
    /// Each vertex connects to its `k` nearest neighbors (k/2 on each side);
    /// must be even and at least 2.
    pub k: usize,
    /// Rewiring probability in `[0, 1]`.
    pub beta: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl WattsStrogatzConfig {
    /// Creates a config.
    pub fn new(num_vertices: usize, k: usize, beta: f64) -> Self {
        Self {
            num_vertices,
            k,
            beta,
            seed: 0,
        }
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a directed Watts–Strogatz graph (each lattice/rewired edge is
/// emitted in both directions so the graph is effectively undirected).
///
/// # Panics
///
/// Panics if `k` is odd, `k < 2`, `k >= num_vertices`, or `beta` is outside
/// `[0, 1]`.
pub fn generate_watts_strogatz(config: &WattsStrogatzConfig) -> CsrGraph {
    let n = config.num_vertices;
    let k = config.k;
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "k must be an even number >= 2"
    );
    assert!(k < n, "k must be smaller than the number of vertices");
    assert!((0.0..=1.0).contains(&config.beta), "beta must be in [0, 1]");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut edges = EdgeList::with_capacity(n * k);
    edges.ensure_vertices(n);

    for v in 0..n {
        for offset in 1..=(k / 2) {
            let mut dst = (v + offset) % n;
            if rng.gen_bool(config.beta) {
                // Rewire to a uniform random target that is not v itself.
                loop {
                    let candidate = rng.gen_range(0..n);
                    if candidate != v {
                        dst = candidate;
                        break;
                    }
                }
            }
            edges.push(v as VertexId, dst as VertexId);
            edges.push(dst as VertexId, v as VertexId);
        }
    }
    edges.dedup();
    CsrGraph::from_edge_list(&edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::GraphProperties;

    #[test]
    fn ring_lattice_without_rewiring() {
        let g = generate_watts_strogatz(&WattsStrogatzConfig::new(20, 4, 0.0).with_seed(1));
        assert_eq!(g.num_vertices(), 20);
        // Every vertex has exactly k undirected neighbors.
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 4);
        }
    }

    #[test]
    fn rewiring_preserves_vertex_count_and_roughly_edge_count() {
        let g0 = generate_watts_strogatz(&WattsStrogatzConfig::new(200, 6, 0.0).with_seed(2));
        let g1 = generate_watts_strogatz(&WattsStrogatzConfig::new(200, 6, 0.3).with_seed(2));
        assert_eq!(g0.num_vertices(), g1.num_vertices());
        // Rewiring can merge a few parallel edges after dedup but stays close.
        assert!(g1.num_edges() as f64 > g0.num_edges() as f64 * 0.9);
    }

    #[test]
    fn low_beta_has_higher_clustering_than_high_beta() {
        let low = generate_watts_strogatz(&WattsStrogatzConfig::new(500, 8, 0.01).with_seed(3));
        let high = generate_watts_strogatz(&WattsStrogatzConfig::new(500, 8, 0.9).with_seed(3));
        let c_low = GraphProperties::analyze(&low, 3).avg_clustering_coefficient;
        let c_high = GraphProperties::analyze(&high, 3).avg_clustering_coefficient;
        assert!(
            c_low > c_high,
            "expected clustering {c_low} (beta=0.01) > {c_high} (beta=0.9)"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = WattsStrogatzConfig::new(100, 4, 0.2).with_seed(17);
        let a = generate_watts_strogatz(&cfg);
        let b = generate_watts_strogatz(&cfg);
        for v in a.vertices() {
            assert_eq!(a.out_neighbors(v), b.out_neighbors(v));
        }
    }

    #[test]
    #[should_panic(expected = "even number")]
    fn odd_k_panics() {
        let _ = generate_watts_strogatz(&WattsStrogatzConfig::new(10, 3, 0.1));
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn invalid_beta_panics() {
        let _ = generate_watts_strogatz(&WattsStrogatzConfig::new(10, 2, 1.5));
    }
}
