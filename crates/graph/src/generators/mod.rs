//! Synthetic graph generators.
//!
//! The paper evaluates PREDIcT on four real graphs (LiveJournal, Wikipedia,
//! Twitter, UK-2002). Those datasets are not redistributable inside this
//! repository, so the [`datasets`](crate::datasets) presets build scaled-down
//! *analogs* using the generators in this module:
//!
//! * [`rmat`] — recursive-matrix (R-MAT) graphs, the standard synthetic model
//!   for power-law web/social graphs (used for the Wikipedia, UK-2002 and
//!   Twitter analogs).
//! * [`barabasi_albert`] — preferential-attachment scale-free graphs
//!   (alternative scale-free analog, also used in sampler tests).
//! * [`erdos_renyi`] — uniform random graphs whose degree distribution is
//!   binomial rather than power-law (used for the LiveJournal analog, whose
//!   out-degree distribution the paper observes is *not* a power law).
//! * [`watts_strogatz`] — small-world ring-rewiring graphs (used for
//!   sensitivity tests on clustering-coefficient preservation).
//! * [`degenerate`] — chains, stars, cycles, complete graphs and binary trees;
//!   the "degenerate graph structures" on which the paper states its
//!   methodology does not apply, used for negative tests.
//!
//! All generators are deterministic given a seed.

pub mod barabasi_albert;
pub mod degenerate;
pub mod erdos_renyi;
pub mod rmat;
pub mod watts_strogatz;

pub use barabasi_albert::{generate_barabasi_albert, BarabasiAlbertConfig};
pub use degenerate::{binary_tree, chain, complete, cycle, star};
pub use erdos_renyi::{generate_erdos_renyi, ErdosRenyiConfig};
pub use rmat::{generate_rmat, RmatConfig};
pub use watts_strogatz::{generate_watts_strogatz, WattsStrogatzConfig};
