//! Synthetic graph generators.
//!
//! The paper evaluates PREDIcT on four real graphs (LiveJournal, Wikipedia,
//! Twitter, UK-2002). Those datasets are not redistributable inside this
//! repository, so the [`datasets`](crate::datasets) presets build scaled-down
//! *analogs* using the generators in this module:
//!
//! * [`rmat`] — recursive-matrix (R-MAT) graphs, the standard synthetic model
//!   for power-law web/social graphs (used for the Wikipedia, UK-2002 and
//!   Twitter analogs).
//! * [`barabasi_albert`] — preferential-attachment scale-free graphs
//!   (alternative scale-free analog, also used in sampler tests).
//! * [`erdos_renyi`] — uniform random graphs whose degree distribution is
//!   binomial rather than power-law (used for the LiveJournal analog, whose
//!   out-degree distribution the paper observes is *not* a power law).
//! * [`watts_strogatz`] — small-world ring-rewiring graphs (used for
//!   sensitivity tests on clustering-coefficient preservation).
//! * [`degenerate`] — chains, stars, cycles, complete graphs and binary trees;
//!   the "degenerate graph structures" on which the paper states its
//!   methodology does not apply, used for negative tests.
//!
//! Beyond the paper's Table 2 regime, three generators stress the samplers on
//! structures the paper does not cover (swept by the `table2_new_datasets`
//! and `fig9_new_generators` experiment binaries):
//!
//! * [`grid_road`] — 2-D lattice road networks: huge effective diameter,
//!   bounded degrees, no hub core for BRJ to bias towards.
//! * [`bipartite`] — web-style two-mode graphs: walks alternate between a
//!   uniform "user" side and a power-law "site" side.
//! * [`dcsbm`] — degree-corrected stochastic block models: community
//!   structure plus heavy-tailed degrees inside every block.
//!
//! All generators are deterministic given a seed.

pub mod barabasi_albert;
pub mod bipartite;
pub mod dcsbm;
pub mod degenerate;
pub mod erdos_renyi;
pub mod grid_road;
pub mod rmat;
pub mod watts_strogatz;

pub use barabasi_albert::{generate_barabasi_albert, BarabasiAlbertConfig};
pub use bipartite::{generate_bipartite, BipartiteConfig};
pub use dcsbm::{generate_dcsbm, DcsbmConfig};
pub use degenerate::{binary_tree, chain, complete, cycle, star};
pub use erdos_renyi::{generate_erdos_renyi, ErdosRenyiConfig};
pub use grid_road::{generate_grid_road, GridRoadConfig};
pub use rmat::{generate_rmat, RmatConfig};
pub use watts_strogatz::{generate_watts_strogatz, WattsStrogatzConfig};
