//! Barabási–Albert preferential-attachment generator.
//!
//! Produces scale-free graphs by growing the graph one vertex at a time and
//! attaching each new vertex to `m` existing vertices chosen with probability
//! proportional to their current degree. The resulting degree distribution
//! follows a power law with exponent ≈ 3, which makes these graphs a good
//! stand-in for the scale-free web/social graphs the paper samples from.

use crate::csr::CsrGraph;
use crate::edge_list::EdgeList;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate_barabasi_albert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarabasiAlbertConfig {
    /// Total number of vertices.
    pub num_vertices: usize,
    /// Number of edges each newly added vertex attaches with.
    pub edges_per_vertex: usize,
    /// PRNG seed.
    pub seed: u64,
    /// When true the generated edges are mirrored so the output graph is
    /// undirected (every attachment appears in both directions).
    pub undirected: bool,
}

impl BarabasiAlbertConfig {
    /// Creates a config for a directed graph of `num_vertices` vertices, each
    /// new vertex attaching `edges_per_vertex` edges.
    pub fn new(num_vertices: usize, edges_per_vertex: usize) -> Self {
        Self {
            num_vertices,
            edges_per_vertex,
            seed: 0,
            undirected: false,
        }
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Requests an undirected graph (edges mirrored in both directions).
    pub fn undirected(mut self) -> Self {
        self.undirected = true;
        self
    }
}

/// Generates a Barabási–Albert preferential-attachment graph.
///
/// The first `edges_per_vertex + 1` vertices form a small seed clique; every
/// subsequent vertex attaches to `edges_per_vertex` distinct existing vertices
/// chosen proportionally to their degree (implemented with the standard
/// repeated-endpoint trick: endpoints of previously created edges are sampled
/// uniformly, which is equivalent to degree-proportional sampling).
///
/// # Panics
///
/// Panics if `num_vertices <= edges_per_vertex` or `edges_per_vertex == 0`.
pub fn generate_barabasi_albert(config: &BarabasiAlbertConfig) -> CsrGraph {
    let n = config.num_vertices;
    let m = config.edges_per_vertex;
    assert!(m > 0, "edges_per_vertex must be positive");
    assert!(n > m, "num_vertices must exceed edges_per_vertex");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut edges = EdgeList::with_capacity(n * m * 2);
    edges.ensure_vertices(n);

    // `endpoints` holds every endpoint of every edge created so far; sampling
    // uniformly from it is degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(n * m * 2);

    // Seed clique over the first m + 1 vertices.
    let seed_size = m + 1;
    for i in 0..seed_size as VertexId {
        for j in 0..seed_size as VertexId {
            if i != j {
                edges.push(i, j);
            }
        }
        for _ in 0..(seed_size - 1) {
            endpoints.push(i);
        }
    }

    let mut targets: Vec<VertexId> = Vec::with_capacity(m);
    for v in seed_size as VertexId..n as VertexId {
        targets.clear();
        // Pick m distinct targets proportional to degree.
        let mut attempts = 0usize;
        while targets.len() < m && attempts < m * 50 {
            attempts += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        // Extremely unlikely fallback: fill with arbitrary earlier vertices.
        let mut fill = 0 as VertexId;
        while targets.len() < m {
            if fill != v && !targets.contains(&fill) {
                targets.push(fill);
            }
            fill += 1;
        }
        for &t in &targets {
            edges.push(v, t);
            if config.undirected {
                edges.push(t, v);
            }
            endpoints.push(v);
            endpoints.push(t);
        }
    }

    CsrGraph::from_edge_list(&edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_and_edge_counts() {
        let cfg = BarabasiAlbertConfig::new(500, 3).with_seed(1);
        let g = generate_barabasi_albert(&cfg);
        assert_eq!(g.num_vertices(), 500);
        // Seed clique of 4 vertices (12 directed edges) + 3 per added vertex.
        let expected = 12 + (500 - 4) * 3;
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn undirected_doubles_attachment_edges() {
        let g =
            generate_barabasi_albert(&BarabasiAlbertConfig::new(100, 2).with_seed(1).undirected());
        // Every non-seed attachment edge appears in both directions.
        let expected = 6 + (100 - 3) * 2 * 2;
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = BarabasiAlbertConfig::new(200, 2).with_seed(9);
        let a = generate_barabasi_albert(&cfg);
        let b = generate_barabasi_albert(&cfg);
        for v in a.vertices() {
            assert_eq!(a.out_neighbors(v), b.out_neighbors(v));
        }
    }

    #[test]
    fn produces_hub_vertices() {
        let g = generate_barabasi_albert(&BarabasiAlbertConfig::new(2000, 3).with_seed(5));
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        // Preferential attachment concentrates in-degree on early vertices.
        assert!(max_in > 30, "expected a hub, max in-degree was {max_in}");
    }

    #[test]
    fn early_vertices_attract_more_links_than_late_ones() {
        let g = generate_barabasi_albert(&BarabasiAlbertConfig::new(1000, 2).with_seed(3));
        let early: usize = (0..10).map(|v| g.in_degree(v)).sum();
        let late: usize = (990..1000).map(|v| g.in_degree(v as VertexId)).sum();
        assert!(early > late);
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn too_few_vertices_panics() {
        let _ = generate_barabasi_albert(&BarabasiAlbertConfig::new(3, 3));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_attachment_panics() {
        let _ = generate_barabasi_albert(&BarabasiAlbertConfig::new(10, 0));
    }
}
