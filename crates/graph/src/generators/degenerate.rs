//! Degenerate graph structures.
//!
//! Section 3.5 of the paper notes that PREDIcT "cannot be used on degenerate
//! graph structures where maintaining key graph properties in a sample graph
//! is not possible", giving lists (chains) as an example. These constructors
//! build such structures for negative tests — e.g. asserting that samples of a
//! chain cannot preserve its diameter, or that iteration prediction degrades.

use crate::csr::CsrGraph;
use crate::edge_list::EdgeList;
use crate::types::VertexId;

/// A directed chain `0 -> 1 -> 2 -> ... -> n-1` (the "list" degenerate case).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn chain(n: usize) -> CsrGraph {
    assert!(n > 0, "chain needs at least one vertex");
    let mut edges = EdgeList::with_capacity(n.saturating_sub(1));
    edges.ensure_vertices(n);
    for v in 0..n.saturating_sub(1) {
        edges.push(v as VertexId, (v + 1) as VertexId);
    }
    CsrGraph::from_edge_list(&edges)
}

/// A directed cycle `0 -> 1 -> ... -> n-1 -> 0`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 2, "cycle needs at least two vertices");
    let mut edges = EdgeList::with_capacity(n);
    edges.ensure_vertices(n);
    for v in 0..n {
        edges.push(v as VertexId, ((v + 1) % n) as VertexId);
    }
    CsrGraph::from_edge_list(&edges)
}

/// A star with vertex 0 at the center pointing to all `n - 1` leaves, and
/// every leaf pointing back (undirected star).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> CsrGraph {
    assert!(n >= 2, "star needs at least two vertices");
    let mut edges = EdgeList::with_capacity(2 * (n - 1));
    edges.ensure_vertices(n);
    for v in 1..n {
        edges.push(0, v as VertexId);
        edges.push(v as VertexId, 0);
    }
    CsrGraph::from_edge_list(&edges)
}

/// A complete directed graph on `n` vertices (all ordered pairs, no loops).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete(n: usize) -> CsrGraph {
    assert!(n >= 2, "complete graph needs at least two vertices");
    let mut edges = EdgeList::with_capacity(n * (n - 1));
    edges.ensure_vertices(n);
    for s in 0..n {
        for d in 0..n {
            if s != d {
                edges.push(s as VertexId, d as VertexId);
            }
        }
    }
    CsrGraph::from_edge_list(&edges)
}

/// A complete binary tree of the given `depth` with edges pointing from parent
/// to children (depth 0 is a single root).
pub fn binary_tree(depth: u32) -> CsrGraph {
    let n = (1usize << (depth + 1)) - 1;
    let mut edges = EdgeList::with_capacity(n - 1);
    edges.ensure_vertices(n);
    for parent in 0..n {
        let left = 2 * parent + 1;
        let right = 2 * parent + 2;
        if left < n {
            edges.push(parent as VertexId, left as VertexId);
        }
        if right < n {
            edges.push(parent as VertexId, right as VertexId);
        }
    }
    CsrGraph::from_edge_list(&edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_counts() {
        let g = chain(10);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(9), 0);
    }

    #[test]
    fn chain_of_one_vertex_is_edgeless() {
        let g = chain(1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn cycle_every_vertex_has_degree_one() {
        let g = cycle(7);
        assert_eq!(g.num_edges(), 7);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
    }

    #[test]
    fn star_center_has_all_the_degree() {
        let g = star(11);
        assert_eq!(g.out_degree(0), 10);
        assert_eq!(g.in_degree(0), 10);
        for v in 1..11 {
            assert_eq!(g.out_degree(v), 1);
        }
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 30);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 5);
            assert_eq!(g.in_degree(v), 5);
        }
    }

    #[test]
    fn binary_tree_structure() {
        let g = binary_tree(3);
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.out_degree(0), 2);
        // Leaves have no children.
        for v in 7..15 {
            assert_eq!(g.out_degree(v), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_cycle_panics() {
        let _ = cycle(1);
    }
}
