//! R-MAT (recursive matrix) graph generator.
//!
//! R-MAT [Chakrabarti et al., SDM 2004] recursively subdivides the adjacency
//! matrix into four quadrants with probabilities `(a, b, c, d)` and drops each
//! edge into the quadrant chosen at every level. With the canonical skewed
//! parameters (`a = 0.57, b = 0.19, c = 0.19, d = 0.05`) the resulting graphs
//! have heavy-tailed in/out degree distributions, a small effective diameter
//! and a pronounced "core" of hub vertices — the properties the paper relies
//! on for its web/social graph workloads.

use crate::csr::CsrGraph;
use crate::edge_list::EdgeList;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate_rmat`].
#[derive(Debug, Clone, PartialEq)]
pub struct RmatConfig {
    /// log2 of the number of vertices (the graph has `2^scale` vertex ids).
    pub scale: u32,
    /// Average out-degree; the generator emits `avg_degree * 2^scale` edges
    /// before deduplication and self-loop removal.
    pub avg_degree: usize,
    /// Quadrant probability `a` (top-left).
    pub a: f64,
    /// Quadrant probability `b` (top-right).
    pub b: f64,
    /// Quadrant probability `c` (bottom-left).
    pub c: f64,
    /// PRNG seed.
    pub seed: u64,
    /// Whether to remove duplicate edges (keeps the graph simple). Defaults to
    /// `true`; turning it off yields a multigraph with exactly
    /// `avg_degree * 2^scale` edges.
    pub dedup: bool,
    /// Noise added to the quadrant probabilities at each recursion level to
    /// avoid staircase artifacts in the degree distribution.
    pub noise: f64,
}

impl RmatConfig {
    /// Creates a config with the canonical skewed R-MAT parameters
    /// `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`.
    pub fn new(scale: u32, avg_degree: usize) -> Self {
        Self {
            scale,
            avg_degree,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 0,
            dedup: true,
            noise: 0.05,
        }
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the quadrant probabilities. `d` is implied as
    /// `1 - a - b - c`.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are negative or sum to more than 1.
    pub fn with_probabilities(mut self, a: f64, b: f64, c: f64) -> Self {
        assert!(
            a >= 0.0 && b >= 0.0 && c >= 0.0,
            "probabilities must be non-negative"
        );
        assert!(a + b + c <= 1.0 + 1e-9, "a + b + c must not exceed 1");
        self.a = a;
        self.b = b;
        self.c = c;
        self
    }

    /// Keeps duplicate edges instead of deduplicating.
    pub fn keep_duplicates(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Number of vertices the generated graph will have.
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Number of edges generated before deduplication.
    pub fn target_edges(&self) -> usize {
        self.avg_degree * self.num_vertices()
    }
}

/// Generates an R-MAT graph according to `config`.
///
/// Self-loops are dropped; duplicate edges are removed unless
/// [`RmatConfig::keep_duplicates`] was requested, so the resulting edge count
/// can be slightly below `avg_degree * 2^scale`.
pub fn generate_rmat(config: &RmatConfig) -> CsrGraph {
    let n = config.num_vertices();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut edges = EdgeList::with_capacity(config.target_edges());
    edges.ensure_vertices(n);

    for _ in 0..config.target_edges() {
        let (src, dst) = rmat_edge(config, &mut rng);
        if src != dst {
            edges.push(src, dst);
        }
    }
    if config.dedup {
        edges.dedup();
    }
    CsrGraph::from_edge_list(&edges)
}

/// Draws a single edge by recursive quadrant descent.
fn rmat_edge(config: &RmatConfig, rng: &mut StdRng) -> (VertexId, VertexId) {
    let mut src = 0u64;
    let mut dst = 0u64;
    let d = 1.0 - config.a - config.b - config.c;
    for level in 0..config.scale {
        // Perturb the probabilities per level so repeated descents do not
        // produce an artificially discrete degree distribution.
        let mut jitter = |p: f64| {
            let eps: f64 = rng.gen_range(-config.noise..=config.noise);
            (p * (1.0 + eps)).max(0.0)
        };
        let (a, b, c, dd) = (
            jitter(config.a),
            jitter(config.b),
            jitter(config.c),
            jitter(d),
        );
        let total = a + b + c + dd;
        let r: f64 = rng.gen_range(0.0..total);
        let bit = 1u64 << (config.scale - 1 - level);
        if r < a {
            // top-left: neither bit set
        } else if r < a + b {
            dst |= bit;
        } else if r < a + b + c {
            src |= bit;
        } else {
            src |= bit;
            dst |= bit;
        }
    }
    (src as VertexId, dst as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_vertex_count() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        assert_eq!(g.num_vertices(), 256);
    }

    #[test]
    fn edge_count_close_to_target_without_dedup() {
        let cfg = RmatConfig::new(8, 4).with_seed(1).keep_duplicates();
        let g = generate_rmat(&cfg);
        // Only self-loops are dropped, so we should be within a few percent.
        assert!(g.num_edges() > cfg.target_edges() * 9 / 10);
        assert!(g.num_edges() <= cfg.target_edges());
    }

    #[test]
    fn dedup_reduces_or_preserves_edge_count() {
        let with_dup = generate_rmat(&RmatConfig::new(8, 8).with_seed(3).keep_duplicates());
        let without = generate_rmat(&RmatConfig::new(8, 8).with_seed(3));
        assert!(without.num_edges() <= with_dup.num_edges());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate_rmat(&RmatConfig::new(7, 4).with_seed(42));
        let b = generate_rmat(&RmatConfig::new(7, 4).with_seed(42));
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.vertices() {
            assert_eq!(a.out_neighbors(v), b.out_neighbors(v));
        }
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let a = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        let b = generate_rmat(&RmatConfig::new(8, 4).with_seed(2));
        let same = a
            .vertices()
            .all(|v| a.out_neighbors(v) == b.out_neighbors(v));
        assert!(!same, "seeds 1 and 2 produced identical graphs");
    }

    #[test]
    fn skewed_parameters_produce_hub_vertices() {
        let g = generate_rmat(&RmatConfig::new(10, 8).with_seed(7));
        let max_deg = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.avg_degree();
        // A power-law-ish graph has hubs far above the average degree.
        assert!(
            (max_deg as f64) > avg * 5.0,
            "max degree {max_deg} not much larger than avg {avg}"
        );
    }

    #[test]
    fn no_self_loops() {
        let g = generate_rmat(&RmatConfig::new(8, 6).with_seed(9));
        for v in g.vertices() {
            assert!(!g.out_neighbors(v).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "must not exceed 1")]
    fn invalid_probabilities_panic() {
        let _ = RmatConfig::new(4, 2).with_probabilities(0.7, 0.3, 0.3);
    }
}
