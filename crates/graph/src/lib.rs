//! Graph substrate for the PREDIcT reproduction.
//!
//! This crate provides the data structures and tooling that every other crate
//! in the workspace builds on:
//!
//! * [`CsrGraph`] — an immutable, compressed-sparse-row directed graph with
//!   optional edge weights and both out- and in-adjacency, the representation
//!   used by the BSP engine and the samplers.
//! * [`ShardedCsr`] — the per-worker slice of a graph (local CSR over the
//!   owned vertices plus remote-edge cut lists), so a graph partitioned over
//!   BSP workers never needs to exist as one contiguous allocation.
//! * [`EdgeList`] / [`GraphBuilder`] — mutable construction APIs.
//! * [`generators`] — synthetic graph generators (R-MAT, Barabási–Albert,
//!   Erdős–Rényi, Watts–Strogatz, degenerate chains, plus grid road
//!   networks, bipartite web graphs and degree-corrected block models) used
//!   to build scaled-down analogs of the paper's datasets and regimes beyond
//!   them.
//! * [`datasets`] — presets mirroring Table 2 of the paper (LiveJournal,
//!   Wikipedia, Twitter, UK-2002 analogs) plus the extended
//!   road/bipartite/DC-SBM datasets.
//! * [`properties`] — graph property analysis (degree distributions, power-law
//!   fit, effective diameter, clustering coefficient, connected components)
//!   used to validate that samples preserve the properties the paper relies on.
//! * [`dstat`] — Kolmogorov–Smirnov D-statistic comparison between a sample's
//!   property distributions and the full graph's (as in Leskovec & Faloutsos).
//! * [`io`] — plain-text edge-list readers and writers.
//!
//! # Example
//!
//! ```
//! use predict_graph::generators::{RmatConfig, generate_rmat};
//! use predict_graph::properties::GraphProperties;
//!
//! let graph = generate_rmat(&RmatConfig::new(10, 8).with_seed(42));
//! assert!(graph.num_vertices() <= 1 << 10);
//! let props = GraphProperties::analyze(&graph, 7);
//! assert!(props.avg_out_degree > 0.0);
//! ```

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod dstat;
pub mod edge_list;
pub mod generators;
pub mod io;
pub mod properties;
pub mod sharded;
pub mod subgraph;
pub mod types;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use edge_list::EdgeList;
pub use sharded::{shard_csr, shard_edge_list, ShardedCsr};
pub use subgraph::{induced_subgraph, SubgraphMapping};
pub use types::{Edge, EdgeCount, VertexCount, VertexId};
