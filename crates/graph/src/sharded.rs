//! Per-worker sharded CSR graph storage.
//!
//! PREDIcT's methodology assumes the BSP engine partitions the input graph
//! across workers (section 2.2 of the paper) and that per-worker key input
//! features — messages, bytes, active vertices — fall out of that partition.
//! A [`ShardedCsr`] makes the partition structural: it is the slice of a
//! graph owned by *one* worker, holding only the out-adjacency of the
//! vertices assigned to that worker, plus the cut lists of edges whose
//! destination lives on a peer worker. A graph sharded over `W` workers is a
//! `Vec<ShardedCsr>` whose shards together cover every edge exactly once —
//! and the graph never needs to exist as one contiguous allocation.
//!
//! Shards are built by the same counting machinery as
//! [`CsrGraph`](crate::csr::CsrGraph) (degree histogram → prefix offsets →
//! direct placement, no sorting), either straight from an [`EdgeList`]
//! ([`shard_edge_list`]) or by slicing an already-frozen CSR
//! ([`shard_csr`]). Both preserve per-source edge order, so a shard's
//! adjacency of vertex `v` is byte-identical to the unified
//! `CsrGraph::out_neighbors(v)` — the property that lets the BSP runtime
//! guarantee byte-identical results under either storage (see
//! `predict_bsp::runtime`).
//!
//! Ownership is expressed as a plain `owner(v) -> worker` function so this
//! crate stays partitioning-agnostic; `predict_bsp` supplies its
//! `PartitionStrategy` assignment when building storage for an engine.

use crate::csr::prefix_sum;
use crate::edge_list::EdgeList;
use crate::types::{Edge, VertexId};
use serde::Serialize;

/// The slice of a graph owned by one worker: a local CSR over the worker's
/// owned vertices plus the remote-edge cut lists.
///
/// * **Owned vertices** — ascending global vertex ids assigned to this
///   worker; local *slot* `i` is the `i`-th owned vertex, the same dense
///   order `predict_bsp`'s shard layout uses.
/// * **Local CSR** — `out_offsets`/`out_targets` indexed by slot; targets are
///   *global* vertex ids (a message can leave the shard, the adjacency
///   cannot).
/// * **Cut lists** — for every peer worker `w`, the positions (indices into
///   `out_targets`) of the out-edges whose destination is owned by `w`.
///   These make the per-worker remote-edge totals of the paper's
///   critical-path model (section 3.4) a structural fact of the storage
///   instead of a per-run scan.
#[derive(Debug, Clone, Serialize)]
pub struct ShardedCsr {
    worker: usize,
    num_workers: usize,
    /// Vertices of the *whole* graph, not of this shard.
    global_vertices: usize,
    /// Edges of the *whole* graph, not of this shard.
    global_edges: usize,
    /// Owned global vertex ids, ascending. Slot `i` is `owned[i]`.
    owned: Vec<VertexId>,
    /// Slot-indexed prefix offsets into `out_targets` (`owned.len() + 1`).
    out_offsets: Vec<usize>,
    /// Out-neighbors (global ids) of the owned vertices, grouped by slot.
    out_targets: Vec<VertexId>,
    /// Weights aligned with `out_targets`; `None` when the graph is
    /// unweighted (the decision is global, matching `CsrGraph`).
    out_weights: Option<Vec<f32>>,
    /// `cut[w]` = indices into `out_targets` of edges destined for peer
    /// worker `w`; `cut[self.worker]` is always empty (local edges are
    /// implicit).
    cut: Vec<Vec<u32>>,
}

impl ShardedCsr {
    /// Reassembles a shard from its raw parts — the decode half of a wire
    /// format (`predict_cluster` ships shards to worker processes this way).
    /// Validates the structural invariants the builders guarantee so a
    /// corrupted or truncated payload is rejected instead of producing a
    /// shard that would misroute messages.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        worker: usize,
        num_workers: usize,
        global_vertices: usize,
        global_edges: usize,
        owned: Vec<VertexId>,
        out_offsets: Vec<usize>,
        out_targets: Vec<VertexId>,
        out_weights: Option<Vec<f32>>,
        cut: Vec<Vec<u32>>,
    ) -> Result<Self, String> {
        if num_workers == 0 {
            return Err("at least one worker is required".into());
        }
        if worker >= num_workers {
            return Err(format!(
                "worker {worker} out of range for {num_workers} workers"
            ));
        }
        if owned.windows(2).any(|w| w[0] >= w[1]) {
            return Err("owned vertex ids must be strictly ascending".into());
        }
        if owned.iter().any(|&v| v as usize >= global_vertices) {
            return Err("owned vertex id exceeds global vertex count".into());
        }
        if out_offsets.len() != owned.len() + 1 {
            return Err(format!(
                "expected {} offsets for {} owned vertices, got {}",
                owned.len() + 1,
                owned.len(),
                out_offsets.len(),
            ));
        }
        if out_offsets.first() != Some(&0) || out_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must start at 0 and be non-decreasing".into());
        }
        if out_offsets.last() != Some(&out_targets.len()) {
            return Err("last offset must equal the local edge count".into());
        }
        if out_targets.len() > global_edges {
            return Err("shard holds more edges than the whole graph".into());
        }
        if out_targets.iter().any(|&t| t as usize >= global_vertices) {
            return Err("edge target exceeds global vertex count".into());
        }
        if let Some(ws) = &out_weights {
            if ws.len() != out_targets.len() {
                return Err("weights must align with targets".into());
            }
        }
        if cut.len() != num_workers {
            return Err(format!(
                "expected {num_workers} cut lists, got {}",
                cut.len()
            ));
        }
        if !cut[worker].is_empty() {
            return Err("the cut list to the shard's own worker must be empty".into());
        }
        if cut
            .iter()
            .flatten()
            .any(|&i| i as usize >= out_targets.len())
        {
            return Err("cut position exceeds the local edge count".into());
        }
        Ok(Self {
            worker,
            num_workers,
            global_vertices,
            global_edges,
            owned,
            out_offsets,
            out_targets,
            out_weights,
            cut,
        })
    }

    /// Index of the worker this shard belongs to.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Number of workers the graph was sharded over.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Vertices of the whole graph (across all shards).
    pub fn global_vertices(&self) -> usize {
        self.global_vertices
    }

    /// Edges of the whole graph (across all shards).
    pub fn global_edges(&self) -> usize {
        self.global_edges
    }

    /// Owned global vertex ids, ascending; slot `i` is `owned()[i]`.
    pub fn owned(&self) -> &[VertexId] {
        &self.owned
    }

    /// Number of vertices this shard owns.
    pub fn num_local_vertices(&self) -> usize {
        self.owned.len()
    }

    /// Number of out-edges leaving this shard's owned vertices.
    pub fn num_local_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// True when the graph stores per-edge weights.
    pub fn is_weighted(&self) -> bool {
        self.out_weights.is_some()
    }

    /// Out-neighbors (global ids) of the owned vertex at `slot`.
    pub fn out_neighbors_at(&self, slot: usize) -> &[VertexId] {
        &self.out_targets[self.out_offsets[slot]..self.out_offsets[slot + 1]]
    }

    /// Weights of the out-edges of the owned vertex at `slot`, aligned with
    /// [`Self::out_neighbors_at`]; `None` for unweighted graphs.
    pub fn out_weights_at(&self, slot: usize) -> Option<&[f32]> {
        self.out_weights
            .as_ref()
            .map(|w| &w[self.out_offsets[slot]..self.out_offsets[slot + 1]])
    }

    /// Out-degree of the owned vertex at `slot`.
    pub fn out_degree_at(&self, slot: usize) -> usize {
        self.out_offsets[slot + 1] - self.out_offsets[slot]
    }

    /// Slot-indexed prefix offsets into [`Self::out_targets`]
    /// (`num_local_vertices() + 1` entries). The raw-parts counterpart of
    /// [`Self::from_parts`], used by the cluster wire encoder.
    pub fn out_offsets(&self) -> &[usize] {
        &self.out_offsets
    }

    /// All out-neighbors (global ids) of the owned vertices, grouped by slot.
    pub fn out_targets(&self) -> &[VertexId] {
        &self.out_targets
    }

    /// All out-edge weights aligned with [`Self::out_targets`], `None` when
    /// the graph is unweighted.
    pub fn out_weights(&self) -> Option<&[f32]> {
        self.out_weights.as_deref()
    }

    /// Positions (indices into the shard's edge array) of the out-edges cut
    /// to peer worker `peer`. Empty for `peer == self.worker()`.
    pub fn cut_to(&self, peer: usize) -> &[u32] {
        &self.cut[peer]
    }

    /// Number of out-edges whose destination is owned by another worker.
    pub fn remote_edges(&self) -> usize {
        self.cut.iter().map(Vec::len).sum()
    }

    /// Number of out-edges whose destination this shard also owns.
    pub fn local_edges(&self) -> usize {
        self.num_local_edges() - self.remote_edges()
    }

    /// Rough in-memory footprint of the shard in bytes, the per-worker
    /// analog of [`CsrGraph::size_bytes`](crate::csr::CsrGraph::size_bytes).
    pub fn size_bytes(&self) -> usize {
        self.owned.len() * std::mem::size_of::<VertexId>()
            + self.out_offsets.len() * std::mem::size_of::<usize>()
            + self.out_targets.len() * std::mem::size_of::<VertexId>()
            + self
                .out_weights
                .as_ref()
                .map(|w| w.len() * std::mem::size_of::<f32>())
                .unwrap_or(0)
            + self
                .cut
                .iter()
                .map(|c| c.len() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }
}

/// Dense vertex-to-worker assignment shared by both shard builders: owner and
/// slot of every vertex plus the ascending owned list per worker. This is the
/// same decomposition `predict_bsp`'s shard layout computes; rebuilding it
/// here keeps the crates decoupled (the closure is the only coupling point).
struct Assignment {
    owner: Vec<u32>,
    slot: Vec<u32>,
    owned: Vec<Vec<VertexId>>,
}

fn assign(
    num_vertices: usize,
    num_workers: usize,
    owner_of: impl Fn(VertexId) -> usize,
) -> Assignment {
    assert!(num_workers > 0, "at least one worker is required");
    let mut owner = vec![0u32; num_vertices];
    let mut slot = vec![0u32; num_vertices];
    let mut owned: Vec<Vec<VertexId>> = vec![Vec::new(); num_workers];
    for v in 0..num_vertices {
        let w = owner_of(v as VertexId);
        assert!(w < num_workers, "owner {w} of vertex {v} out of range");
        owner[v] = w as u32;
        let shard = &mut owned[w];
        slot[v] = shard.len() as u32;
        shard.push(v as VertexId);
    }
    Assignment { owner, slot, owned }
}

/// Fills every shard's cut lists from its placed adjacency.
fn build_cuts(shards: &mut [ShardedCsr], owner: &[u32]) {
    for shard in shards.iter_mut() {
        for (i, &dst) in shard.out_targets.iter().enumerate() {
            let peer = owner[dst as usize] as usize;
            if peer != shard.worker {
                shard.cut[peer].push(i as u32);
            }
        }
    }
}

/// Shards `list` over `num_workers` workers without ever materializing the
/// unified CSR: one degree-counting pass, one placement pass — the same
/// counting build [`CsrGraph::from_edges`](crate::csr::CsrGraph::from_edges)
/// uses, split per worker. Per-source edge order (insertion order) is
/// preserved, so each shard's adjacency matches the unified graph's.
///
/// `owner_of` maps every vertex id below `list.num_vertices()` to its worker
/// (must be `< num_workers`).
///
/// # Panics
///
/// Panics if `num_workers == 0` or `owner_of` returns an out-of-range worker.
pub fn shard_edge_list(
    list: &EdgeList,
    num_workers: usize,
    owner_of: impl Fn(VertexId) -> usize,
) -> Vec<ShardedCsr> {
    let n = list.num_vertices();
    let edges = list.edges();
    let a = assign(n, num_workers, owner_of);
    let weighted = edges.iter().any(|e| e.weight != 1.0);

    // Per-shard slot degree histograms.
    let mut degrees: Vec<Vec<usize>> = a.owned.iter().map(|o| vec![0usize; o.len()]).collect();
    for e in edges {
        let w = a.owner[e.src as usize] as usize;
        degrees[w][a.slot[e.src as usize] as usize] += 1;
    }

    let mut shards: Vec<ShardedCsr> = (0..num_workers)
        .map(|w| {
            let out_offsets = prefix_sum(&degrees[w]);
            let local_edges = *out_offsets.last().unwrap_or(&0);
            ShardedCsr {
                worker: w,
                num_workers,
                global_vertices: n,
                global_edges: edges.len(),
                owned: a.owned[w].clone(),
                out_targets: vec![0 as VertexId; local_edges],
                out_weights: weighted.then(|| vec![1.0f32; local_edges]),
                out_offsets,
                cut: vec![Vec::new(); num_workers],
            }
        })
        .collect();

    // Placement pass in input order: per-source insertion order survives,
    // exactly as in the unified counting build.
    let mut cursors: Vec<Vec<usize>> = shards.iter().map(|s| s.out_offsets.clone()).collect();
    for e in edges {
        let w = a.owner[e.src as usize] as usize;
        let slot = a.slot[e.src as usize] as usize;
        let c = &mut cursors[w][slot];
        shards[w].out_targets[*c] = e.dst;
        if let Some(ws) = shards[w].out_weights.as_mut() {
            ws[*c] = e.weight;
        }
        *c += 1;
    }

    build_cuts(&mut shards, &a.owner);
    shards
}

/// Shards an already-frozen [`CsrGraph`](crate::csr::CsrGraph) by copying
/// each owned vertex's adjacency slice into its worker's shard. Cheaper than
/// [`shard_edge_list`] when the unified CSR already exists (no per-edge owner
/// lookups on the source side), and produces the identical shards.
///
/// # Panics
///
/// Panics if `num_workers == 0` or `owner_of` returns an out-of-range worker.
pub fn shard_csr(
    graph: &crate::csr::CsrGraph,
    num_workers: usize,
    owner_of: impl Fn(VertexId) -> usize,
) -> Vec<ShardedCsr> {
    let n = graph.num_vertices();
    let a = assign(n, num_workers, owner_of);
    let weighted = graph.is_weighted();

    let mut shards: Vec<ShardedCsr> = (0..num_workers)
        .map(|w| {
            let degrees: Vec<usize> = a.owned[w].iter().map(|&v| graph.out_degree(v)).collect();
            let out_offsets = prefix_sum(&degrees);
            let local_edges = *out_offsets.last().unwrap_or(&0);
            ShardedCsr {
                worker: w,
                num_workers,
                global_vertices: n,
                global_edges: graph.num_edges(),
                owned: a.owned[w].clone(),
                out_targets: Vec::with_capacity(local_edges),
                out_weights: weighted.then(|| Vec::with_capacity(local_edges)),
                out_offsets,
                cut: vec![Vec::new(); num_workers],
            }
        })
        .collect();

    for shard in shards.iter_mut() {
        for &v in &shard.owned {
            shard.out_targets.extend_from_slice(graph.out_neighbors(v));
            if let Some(ws) = shard.out_weights.as_mut() {
                ws.extend_from_slice(graph.out_weights(v).expect("weighted graph has weights"));
            }
        }
    }

    build_cuts(&mut shards, &a.owner);
    shards
}

/// Reassembles the unified edge multiset from a set of shards, in ascending
/// `(worker, slot, edge)` order. Used by tests and by callers that need to
/// hand a sharded graph to an API that still wants one allocation.
pub fn unshard_to_edge_list(shards: &[ShardedCsr]) -> EdgeList {
    let global_vertices = shards.first().map(|s| s.global_vertices).unwrap_or(0);
    let mut el = EdgeList::with_capacity(shards.iter().map(|s| s.num_local_edges()).sum());
    el.ensure_vertices(global_vertices);
    for shard in shards {
        for slot in 0..shard.num_local_vertices() {
            let src = shard.owned[slot];
            let nbrs = shard.out_neighbors_at(slot);
            match shard.out_weights_at(slot) {
                Some(ws) => {
                    for (&dst, &w) in nbrs.iter().zip(ws) {
                        el.push_edge(Edge::weighted(src, dst, w));
                    }
                }
                None => {
                    for &dst in nbrs {
                        el.push(src, dst);
                    }
                }
            }
        }
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::generators::{generate_rmat, RmatConfig};

    fn modulo(workers: usize) -> impl Fn(VertexId) -> usize {
        move |v| v as usize % workers
    }

    fn diamond() -> EdgeList {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        [(0u32, 1u32), (0, 2), (1, 3), (2, 3)].into_iter().collect()
    }

    #[test]
    fn shards_partition_vertices_and_edges() {
        let el = diamond();
        let shards = shard_edge_list(&el, 2, modulo(2));
        assert_eq!(shards.len(), 2);
        // Worker 0 owns 0, 2; worker 1 owns 1, 3.
        assert_eq!(shards[0].owned(), &[0, 2]);
        assert_eq!(shards[1].owned(), &[1, 3]);
        assert_eq!(shards[0].num_local_edges() + shards[1].num_local_edges(), 4);
        for s in &shards {
            assert_eq!(s.global_vertices(), 4);
            assert_eq!(s.global_edges(), 4);
        }
    }

    #[test]
    fn shard_adjacency_matches_unified_csr() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(7));
        let el = g.to_edge_list();
        for workers in [1usize, 3, 5] {
            let shards = shard_edge_list(&el, workers, modulo(workers));
            for shard in &shards {
                for (slot, &v) in shard.owned().iter().enumerate() {
                    assert_eq!(
                        shard.out_neighbors_at(slot),
                        g.out_neighbors(v),
                        "worker {} vertex {v}",
                        shard.worker()
                    );
                }
            }
        }
    }

    #[test]
    fn shard_csr_equals_shard_edge_list() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(9));
        let el = g.to_edge_list();
        let from_list = shard_edge_list(&el, 4, modulo(4));
        let from_csr = shard_csr(&g, 4, modulo(4));
        for (a, b) in from_list.iter().zip(&from_csr) {
            assert_eq!(a.owned(), b.owned());
            assert_eq!(a.out_offsets, b.out_offsets);
            assert_eq!(a.out_targets, b.out_targets);
            assert_eq!(a.out_weights, b.out_weights);
            assert_eq!(a.cut, b.cut);
        }
    }

    #[test]
    fn cut_lists_identify_remote_edges() {
        let el = diamond();
        let shards = shard_edge_list(&el, 2, modulo(2));
        // Worker 0 owns {0, 2}: edges 0->1 (remote), 0->2 (local), 2->3
        // (remote).
        assert_eq!(shards[0].remote_edges(), 2);
        assert_eq!(shards[0].local_edges(), 1);
        assert_eq!(shards[0].cut_to(0), &[] as &[u32]);
        // Worker 1 owns {1, 3}: edge 1->3 is local.
        assert_eq!(shards[1].remote_edges(), 0);
        assert_eq!(shards[1].local_edges(), 1);
        // Cut positions point at the actual remote targets.
        for &i in shards[0].cut_to(1) {
            let dst = shards[0].out_targets[i as usize];
            assert_eq!(dst as usize % 2, 1);
        }
    }

    #[test]
    fn single_worker_owns_everything_with_empty_cuts() {
        let g = generate_rmat(&RmatConfig::new(7, 4).with_seed(3));
        let shards = shard_csr(&g, 1, modulo(1));
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].num_local_vertices(), g.num_vertices());
        assert_eq!(shards[0].num_local_edges(), g.num_edges());
        assert_eq!(shards[0].remote_edges(), 0);
        assert_eq!(shards[0].local_edges(), g.num_edges());
    }

    #[test]
    fn more_workers_than_vertices_leaves_empty_shards() {
        let el: EdgeList = [(0u32, 1u32), (1, 2)].into_iter().collect();
        let shards = shard_edge_list(&el, 8, modulo(8));
        assert_eq!(shards.len(), 8);
        for (w, s) in shards.iter().enumerate() {
            if w < 3 {
                assert_eq!(s.num_local_vertices(), 1);
            } else {
                assert_eq!(s.num_local_vertices(), 0, "worker {w} must own nothing");
                assert_eq!(s.num_local_edges(), 0);
                assert_eq!(s.out_offsets, vec![0]);
            }
        }
    }

    #[test]
    fn empty_graph_shards_are_empty() {
        let el = EdgeList::new();
        let shards = shard_edge_list(&el, 3, modulo(3));
        assert_eq!(shards.len(), 3);
        for s in &shards {
            assert_eq!(s.global_vertices(), 0);
            assert_eq!(s.global_edges(), 0);
            assert_eq!(s.num_local_vertices(), 0);
        }
    }

    #[test]
    fn cross_shard_weighted_edges_keep_their_weights() {
        let mut el = EdgeList::new();
        el.push_weighted(0, 1, 0.25); // worker 0 -> worker 1
        el.push_weighted(1, 2, 4.0); // worker 1 -> worker 0
        el.push_weighted(2, 0, 1.0); // worker 0 -> worker 0 (local)
        let shards = shard_edge_list(&el, 2, modulo(2));
        assert!(shards.iter().all(ShardedCsr::is_weighted));
        let g = CsrGraph::from_edge_list(&el);
        for shard in &shards {
            for (slot, &v) in shard.owned().iter().enumerate() {
                assert_eq!(
                    shard.out_weights_at(slot).unwrap(),
                    g.out_weights(v).unwrap()
                );
            }
        }
        // The cut edge 0 -> 1 carries its weight on worker 0's shard.
        let cut = shards[0].cut_to(1);
        assert_eq!(cut.len(), 1);
        assert_eq!(
            shards[0].out_weights.as_ref().unwrap()[cut[0] as usize],
            0.25
        );
    }

    #[test]
    fn parallel_edges_are_preserved_per_shard() {
        let mut el = EdgeList::new();
        el.push(0, 1);
        el.push(0, 1);
        let shards = shard_edge_list(&el, 2, modulo(2));
        assert_eq!(shards[0].num_local_edges(), 2);
        assert_eq!(shards[0].out_neighbors_at(0), &[1, 1]);
    }

    #[test]
    fn unshard_round_trips_to_the_same_graph() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(5));
        let shards = shard_csr(&g, 4, modulo(4));
        let el = unshard_to_edge_list(&shards);
        let g2 = CsrGraph::from_edge_list(&el);
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(g2.out_neighbors(v), g.out_neighbors(v));
        }
    }

    #[test]
    fn size_bytes_sums_to_sharded_footprint() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(5));
        let shards = shard_csr(&g, 4, modulo(4));
        assert!(shards.iter().map(ShardedCsr::size_bytes).sum::<usize>() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = shard_edge_list(&EdgeList::new(), 0, modulo(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_owner_panics() {
        let el = diamond();
        let _ = shard_edge_list(&el, 2, |_| 7);
    }

    #[test]
    fn from_parts_round_trips_a_built_shard() {
        let g = generate_rmat(&RmatConfig::new(7, 4).with_seed(11));
        for shard in shard_csr(&g, 3, modulo(3)) {
            let rebuilt = ShardedCsr::from_parts(
                shard.worker(),
                shard.num_workers(),
                shard.global_vertices(),
                shard.global_edges(),
                shard.owned().to_vec(),
                shard.out_offsets().to_vec(),
                shard.out_targets().to_vec(),
                shard.out_weights().map(<[f32]>::to_vec),
                (0..shard.num_workers())
                    .map(|p| shard.cut_to(p).to_vec())
                    .collect(),
            )
            .expect("built shards satisfy the invariants");
            assert_eq!(rebuilt.owned(), shard.owned());
            assert_eq!(rebuilt.out_offsets, shard.out_offsets);
            assert_eq!(rebuilt.out_targets, shard.out_targets);
            assert_eq!(rebuilt.cut, shard.cut);
        }
    }

    #[test]
    fn from_parts_rejects_malformed_payloads() {
        // Well-formed baseline: worker 0 of 2 owns vertex 0 with edge 0 -> 1.
        let ok = ShardedCsr::from_parts(
            0,
            2,
            2,
            1,
            vec![0],
            vec![0, 1],
            vec![1],
            None,
            vec![vec![], vec![0]],
        );
        assert!(ok.is_ok());
        let cases: Vec<(&str, Result<ShardedCsr, String>)> = vec![
            (
                "worker out of range",
                ShardedCsr::from_parts(
                    2,
                    2,
                    2,
                    1,
                    vec![0],
                    vec![0, 1],
                    vec![1],
                    None,
                    vec![vec![], vec![0]],
                ),
            ),
            (
                "offsets truncated",
                ShardedCsr::from_parts(
                    0,
                    2,
                    2,
                    1,
                    vec![0],
                    vec![0],
                    vec![1],
                    None,
                    vec![vec![], vec![0]],
                ),
            ),
            (
                "target out of range",
                ShardedCsr::from_parts(
                    0,
                    2,
                    2,
                    1,
                    vec![0],
                    vec![0, 1],
                    vec![9],
                    None,
                    vec![vec![], vec![0]],
                ),
            ),
            (
                "own cut list not empty",
                ShardedCsr::from_parts(
                    0,
                    2,
                    2,
                    1,
                    vec![0],
                    vec![0, 1],
                    vec![1],
                    None,
                    vec![vec![0], vec![]],
                ),
            ),
            (
                "cut position out of range",
                ShardedCsr::from_parts(
                    0,
                    2,
                    2,
                    1,
                    vec![0],
                    vec![0, 1],
                    vec![1],
                    None,
                    vec![vec![], vec![5]],
                ),
            ),
            (
                "misaligned weights",
                ShardedCsr::from_parts(
                    0,
                    2,
                    2,
                    1,
                    vec![0],
                    vec![0, 1],
                    vec![1],
                    Some(vec![1.0, 2.0]),
                    vec![vec![], vec![0]],
                ),
            ),
        ];
        for (what, result) in cases {
            assert!(result.is_err(), "{what} must be rejected");
        }
    }
}
