//! Induced subgraph extraction.
//!
//! Sampling techniques select a set of vertices; the sample *graph* the paper
//! runs on is the subgraph induced by that set (all edges of the original
//! graph whose endpoints are both selected). [`induced_subgraph`] extracts
//! that graph with densely renumbered vertex ids and returns a
//! [`SubgraphMapping`] so per-vertex results on the sample can be mapped back
//! to original vertex ids (needed e.g. when top-k ranking runs on the sample
//! of the PageRank output).

use crate::csr::CsrGraph;
use crate::types::VertexId;
use serde::{Deserialize, Serialize};

/// Mapping between the dense vertex ids of an induced subgraph and the vertex
/// ids of the graph it was extracted from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubgraphMapping {
    /// `to_original[new_id] = original_id`.
    to_original: Vec<VertexId>,
    /// `to_sample[original_id] = Some(new_id)` for selected vertices.
    to_sample: Vec<Option<VertexId>>,
}

impl SubgraphMapping {
    /// Original vertex id for a subgraph vertex id.
    ///
    /// # Panics
    ///
    /// Panics if `sample_id` is out of range for the subgraph.
    pub fn original_id(&self, sample_id: VertexId) -> VertexId {
        self.to_original[sample_id as usize]
    }

    /// Subgraph vertex id for an original vertex id, or `None` if that vertex
    /// was not selected.
    pub fn sample_id(&self, original_id: VertexId) -> Option<VertexId> {
        self.to_sample.get(original_id as usize).copied().flatten()
    }

    /// Number of vertices in the subgraph.
    pub fn num_sampled(&self) -> usize {
        self.to_original.len()
    }

    /// Iterates over `(sample_id, original_id)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.to_original
            .iter()
            .enumerate()
            .map(|(s, &o)| (s as VertexId, o))
    }
}

/// Extracts the subgraph induced by `vertices` (duplicates are ignored; order
/// determines the new dense ids). Edge weights are preserved.
///
/// The sample graph's CSR is assembled directly — no intermediate edge-list
/// materialization. Because the selected vertices are visited in ascending
/// new-id order and each adjacency in neighbor order, the surviving edges are
/// emitted already grouped by source in CSR order: the out-adjacency is a
/// single append pass, and the in-adjacency follows from the same counting
/// build a full-graph construction uses. Neighbor order is byte-identical to
/// building the equivalent edge list and freezing it (pinned by the
/// `induced_subgraph_matches_edge_list_reference` property test).
pub fn induced_subgraph(graph: &CsrGraph, vertices: &[VertexId]) -> (CsrGraph, SubgraphMapping) {
    let mut to_sample: Vec<Option<VertexId>> = vec![None; graph.num_vertices()];
    let mut to_original: Vec<VertexId> = Vec::with_capacity(vertices.len());
    for &v in vertices {
        let slot = &mut to_sample[v as usize];
        if slot.is_none() {
            *slot = Some(to_original.len() as VertexId);
            to_original.push(v);
        }
    }

    // Upper bound on the surviving edge count: the selected vertices' full
    // out-degrees.
    let capacity: usize = to_original.iter().map(|&v| graph.out_degree(v)).sum();
    let mut out_offsets: Vec<usize> = Vec::with_capacity(to_original.len() + 1);
    out_offsets.push(0);
    let mut out_targets: Vec<VertexId> = Vec::with_capacity(capacity);
    // Weight storage mirrors `CsrGraph::from_edges`: the subgraph is weighted
    // only when a surviving edge carries a non-unit weight.
    let mut weight_buf: Vec<f32> = Vec::new();
    let mut weighted = false;
    if graph.is_weighted() {
        weight_buf.reserve(capacity);
    }

    for &orig_src in &to_original {
        let nbrs = graph.out_neighbors(orig_src);
        match graph.out_weights(orig_src) {
            Some(weights) => {
                for (i, &orig_dst) in nbrs.iter().enumerate() {
                    if let Some(new_dst) = to_sample[orig_dst as usize] {
                        out_targets.push(new_dst);
                        weight_buf.push(weights[i]);
                        weighted |= weights[i] != 1.0;
                    }
                }
            }
            None => {
                for &orig_dst in nbrs {
                    if let Some(new_dst) = to_sample[orig_dst as usize] {
                        out_targets.push(new_dst);
                    }
                }
            }
        }
        out_offsets.push(out_targets.len());
    }

    let out_weights = weighted.then_some(weight_buf);
    let sub = CsrGraph::from_csr_parts(to_original.len(), out_offsets, out_targets, out_weights);
    (
        sub,
        SubgraphMapping {
            to_original,
            to_sample,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;
    use crate::generators::{generate_rmat, RmatConfig};

    fn square() -> CsrGraph {
        // 0 -> 1 -> 2 -> 3 -> 0 plus diagonal 0 -> 2
        let el: EdgeList = [(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)]
            .into_iter()
            .collect();
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn keeps_only_internal_edges() {
        let g = square();
        let (sub, map) = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        // Edges 0->1, 1->2, 0->2 survive; 2->3 and 3->0 do not.
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(map.num_sampled(), 3);
    }

    #[test]
    fn mapping_roundtrips() {
        let g = square();
        let (_, map) = induced_subgraph(&g, &[3, 1]);
        assert_eq!(map.original_id(0), 3);
        assert_eq!(map.original_id(1), 1);
        assert_eq!(map.sample_id(3), Some(0));
        assert_eq!(map.sample_id(1), Some(1));
        assert_eq!(map.sample_id(0), None);
        let pairs: Vec<_> = map.iter().collect();
        assert_eq!(pairs, vec![(0, 3), (1, 1)]);
    }

    #[test]
    fn duplicate_selection_is_ignored() {
        let g = square();
        let (sub, map) = induced_subgraph(&g, &[0, 0, 1, 1]);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(map.num_sampled(), 2);
        assert_eq!(sub.num_edges(), 1); // only 0 -> 1
    }

    #[test]
    fn preserves_weights() {
        let mut el = EdgeList::new();
        el.push_weighted(0, 1, 0.5);
        el.push_weighted(1, 2, 3.0);
        let g = CsrGraph::from_edge_list(&el);
        let (sub, _) = induced_subgraph(&g, &[0, 1]);
        assert!(sub.is_weighted());
        assert_eq!(sub.out_weights(0).unwrap(), &[0.5]);
    }

    #[test]
    fn empty_selection_gives_empty_graph() {
        let g = square();
        let (sub, map) = induced_subgraph(&g, &[]);
        assert_eq!(sub.num_vertices(), 0);
        assert_eq!(sub.num_edges(), 0);
        assert_eq!(map.num_sampled(), 0);
    }

    #[test]
    fn full_selection_preserves_graph() {
        let g = generate_rmat(&RmatConfig::new(7, 4).with_seed(5));
        let all: Vec<VertexId> = g.vertices().collect();
        let (sub, map) = induced_subgraph(&g, &all);
        assert_eq!(sub.num_vertices(), g.num_vertices());
        assert_eq!(sub.num_edges(), g.num_edges());
        // Identity mapping because vertices were passed in order.
        for v in g.vertices() {
            assert_eq!(map.original_id(v), v);
        }
    }

    #[test]
    fn subgraph_degrees_never_exceed_original() {
        let g = generate_rmat(&RmatConfig::new(8, 6).with_seed(8));
        let selected: Vec<VertexId> = g.vertices().filter(|v| v % 3 == 0).collect();
        let (sub, map) = induced_subgraph(&g, &selected);
        for (s, o) in map.iter() {
            assert!(sub.out_degree(s) <= g.out_degree(o));
            assert!(sub.in_degree(s) <= g.in_degree(o));
        }
    }
}
