//! Graph property analysis.
//!
//! The paper's sampling requirements (section 3.2.1 and 4.1) are stated in
//! terms of graph properties: in/out degree proportionality, effective
//! diameter, clustering coefficient and connectivity. This module computes
//! those properties so the samplers can be validated against them, and so the
//! dataset presets can report the Table 2 style characteristics.
//!
//! Exact computation of diameter and clustering coefficient is quadratic or
//! worse, so both are estimated from a deterministic sample of source
//! vertices: the estimates are reproducible for a fixed seed and accurate
//! enough for comparing a sample graph against its parent graph.

use crate::csr::CsrGraph;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use std::collections::HashSet;
use std::collections::VecDeque;

/// Number of BFS sources used when estimating the effective diameter.
const DIAMETER_SOURCES: usize = 64;
/// Number of vertices used when estimating the clustering coefficient.
const CLUSTERING_SAMPLES: usize = 512;

/// Summary of the structural properties of a graph.
///
/// Produced by [`GraphProperties::analyze`]; all estimated quantities are
/// deterministic for a fixed seed.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphProperties {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Average out-degree.
    pub avg_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Ratio of the average in-degree to the average out-degree of vertices
    /// that have at least one edge in the respective direction. The paper's
    /// samplers aim to keep this ratio similar between sample and graph.
    pub in_out_degree_ratio: f64,
    /// Estimated 90th-percentile shortest-path distance between connected
    /// pairs ("effective diameter", following Kang et al. / Leskovec et al.).
    pub effective_diameter: f64,
    /// Estimated average local clustering coefficient (over sampled vertices,
    /// treating edges as undirected).
    pub avg_clustering_coefficient: f64,
    /// Number of weakly connected components.
    pub num_weakly_connected_components: usize,
    /// Fraction of vertices inside the largest weakly connected component.
    pub largest_wcc_fraction: f64,
    /// Maximum-likelihood power-law exponent fitted to the out-degree tail.
    pub power_law_alpha: f64,
    /// Kolmogorov–Smirnov distance between the empirical out-degree CCDF and
    /// the fitted power law (smaller = better fit).
    pub power_law_ks: f64,
}

impl GraphProperties {
    /// Analyzes `graph`, using `seed` for the sampled estimators (effective
    /// diameter and clustering coefficient).
    pub fn analyze(graph: &CsrGraph, seed: u64) -> Self {
        let num_vertices = graph.num_vertices();
        let num_edges = graph.num_edges();
        let avg_out_degree = graph.avg_degree();

        let mut max_out_degree = 0usize;
        let mut max_in_degree = 0usize;
        let mut out_nonzero = 0usize;
        let mut in_nonzero = 0usize;
        for v in graph.vertices() {
            let od = graph.out_degree(v);
            let id = graph.in_degree(v);
            max_out_degree = max_out_degree.max(od);
            max_in_degree = max_in_degree.max(id);
            if od > 0 {
                out_nonzero += 1;
            }
            if id > 0 {
                in_nonzero += 1;
            }
        }
        let in_out_degree_ratio = if num_edges == 0 || out_nonzero == 0 || in_nonzero == 0 {
            1.0
        } else {
            (num_edges as f64 / in_nonzero as f64) / (num_edges as f64 / out_nonzero as f64)
        };

        let wcc = weakly_connected_components(graph);
        let (num_wcc, largest_wcc) = wcc_summary(&wcc, num_vertices);

        let effective_diameter = estimate_effective_diameter(graph, DIAMETER_SOURCES, seed);
        let avg_clustering_coefficient =
            estimate_clustering_coefficient(graph, CLUSTERING_SAMPLES, seed);

        let degrees: Vec<usize> = graph.vertices().map(|v| graph.out_degree(v)).collect();
        let (power_law_alpha, power_law_ks) = fit_power_law(&degrees, 2);

        Self {
            num_vertices,
            num_edges,
            avg_out_degree,
            max_out_degree,
            max_in_degree,
            in_out_degree_ratio,
            effective_diameter,
            avg_clustering_coefficient,
            num_weakly_connected_components: num_wcc,
            largest_wcc_fraction: largest_wcc,
            power_law_alpha,
            power_law_ks,
        }
    }

    /// Heuristic check for a scale-free out-degree distribution: a plausible
    /// exponent and a reasonable power-law fit. Mirrors the paper's
    /// distinction between its scale-free graphs and LiveJournal.
    pub fn looks_scale_free(&self) -> bool {
        self.power_law_alpha > 1.2
            && self.power_law_alpha < 4.5
            && self.power_law_ks < 0.2
            && self.max_out_degree as f64 > self.avg_out_degree * 10.0
    }
}

/// Histogram of out-degrees: `histogram[d]` is the number of vertices with
/// out-degree exactly `d`.
pub fn out_degree_histogram(graph: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; 1];
    for v in graph.vertices() {
        let d = graph.out_degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Histogram of in-degrees: `histogram[d]` is the number of vertices with
/// in-degree exactly `d`.
pub fn in_degree_histogram(graph: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; 1];
    for v in graph.vertices() {
        let d = graph.in_degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// BFS distances from `source` over the *undirected* view of the graph
/// (out- and in-neighbors). Unreachable vertices get `usize::MAX`.
pub fn bfs_distances_undirected(graph: &CsrGraph, source: VertexId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; graph.num_vertices()];
    if graph.num_vertices() == 0 {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &n in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
            if dist[n as usize] == usize::MAX {
                dist[n as usize] = d + 1;
                queue.push_back(n);
            }
        }
    }
    dist
}

/// Labels each vertex with the id of its weakly connected component
/// (components are numbered densely starting at 0 in discovery order).
pub fn weakly_connected_components(graph: &CsrGraph) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        queue.push_back(start as VertexId);
        while let Some(v) = queue.pop_front() {
            for &nb in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
                if label[nb as usize] == usize::MAX {
                    label[nb as usize] = next;
                    queue.push_back(nb);
                }
            }
        }
        next += 1;
    }
    label
}

fn wcc_summary(labels: &[usize], num_vertices: usize) -> (usize, f64) {
    if num_vertices == 0 {
        return (0, 0.0);
    }
    let num_components = labels.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut sizes = vec![0usize; num_components];
    for &l in labels {
        sizes[l] += 1;
    }
    let largest = sizes.iter().copied().max().unwrap_or(0);
    (num_components, largest as f64 / num_vertices as f64)
}

/// Estimates the effective diameter (90th percentile of pairwise distances
/// over connected pairs) by running BFS from `num_sources` vertices sampled
/// deterministically with `seed`.
pub fn estimate_effective_diameter(graph: &CsrGraph, num_sources: usize, seed: u64) -> f64 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sources: Vec<VertexId> = graph.vertices().collect();
    sources.shuffle(&mut rng);
    sources.truncate(num_sources.max(1).min(n));

    let mut distances: Vec<usize> = Vec::new();
    for &s in &sources {
        for d in bfs_distances_undirected(graph, s) {
            if d != usize::MAX && d > 0 {
                distances.push(d);
            }
        }
    }
    if distances.is_empty() {
        return 0.0;
    }
    distances.sort_unstable();
    let idx = ((distances.len() as f64) * 0.9).ceil() as usize;
    distances[idx.min(distances.len()) - 1] as f64
}

/// Estimates the average local clustering coefficient over up to
/// `num_samples` vertices sampled deterministically with `seed`. Edges are
/// treated as undirected.
pub fn estimate_clustering_coefficient(graph: &CsrGraph, num_samples: usize, seed: u64) -> f64 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let mut vertices: Vec<VertexId> = graph.vertices().collect();
    vertices.shuffle(&mut rng);
    vertices.truncate(num_samples.max(1).min(n));

    let mut total = 0.0f64;
    let mut counted = 0usize;
    for &v in &vertices {
        let mut nbrs: HashSet<VertexId> = HashSet::new();
        nbrs.extend(graph.out_neighbors(v).iter().copied());
        nbrs.extend(graph.in_neighbors(v).iter().copied());
        nbrs.remove(&v);
        let k = nbrs.len();
        if k < 2 {
            continue;
        }
        let mut links = 0usize;
        for &a in &nbrs {
            for &b in graph.out_neighbors(a) {
                if b != a && nbrs.contains(&b) {
                    links += 1;
                }
            }
        }
        // Each undirected neighbor-pair link is seen at most twice (once per
        // direction if both directions exist); normalize by ordered pairs.
        total += links as f64 / (k * (k - 1)) as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Fits a discrete power law `p(d) ~ d^-alpha` to the degrees `>= x_min` by
/// maximum likelihood (continuous approximation) and returns
/// `(alpha, ks_distance)` where `ks_distance` is the Kolmogorov–Smirnov
/// distance between the empirical tail CCDF and the fitted CCDF.
///
/// Returns `(0.0, 1.0)` when fewer than 10 degrees reach `x_min`.
pub fn fit_power_law(degrees: &[usize], x_min: usize) -> (f64, f64) {
    let x_min = x_min.max(1);
    let tail: Vec<f64> = degrees
        .iter()
        .filter(|&&d| d >= x_min)
        .map(|&d| d as f64)
        .collect();
    if tail.len() < 10 {
        return (0.0, 1.0);
    }
    let xm = x_min as f64;
    let log_sum: f64 = tail.iter().map(|&d| (d / xm).ln()).sum();
    if log_sum <= 0.0 {
        return (0.0, 1.0);
    }
    let alpha = 1.0 + tail.len() as f64 / log_sum;

    // KS distance between empirical CCDF and the fitted CCDF. Degrees are
    // integers, so a continuity correction of half a unit is applied to the
    // model CCDF: an observed degree `d` corresponds to the continuous mass
    // above `d - 0.5`.
    let mut sorted = tail.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len() as f64;
    let mut ks: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        // Degrees are integers so ties are common; the empirical CCDF
        // `P(X >= x)` is only well defined at the first element of each tie
        // group (the step function is flat across the group).
        if i > 0 && sorted[i - 1] == x {
            continue;
        }
        let empirical_ccdf = 1.0 - (i as f64) / n;
        let model_ccdf = ((x - 0.5).max(xm) / xm).powf(1.0 - alpha);
        ks = ks.max((empirical_ccdf - model_ccdf).abs());
    }
    (alpha, ks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{
        chain, complete, generate_barabasi_albert, generate_erdos_renyi, generate_rmat,
        BarabasiAlbertConfig, ErdosRenyiConfig, RmatConfig,
    };

    #[test]
    fn analyze_basic_counts() {
        let g = complete(10);
        let p = GraphProperties::analyze(&g, 1);
        assert_eq!(p.num_vertices, 10);
        assert_eq!(p.num_edges, 90);
        assert!((p.avg_out_degree - 9.0).abs() < 1e-9);
        assert_eq!(p.max_out_degree, 9);
        assert_eq!(p.max_in_degree, 9);
    }

    #[test]
    fn complete_graph_has_clustering_one_and_diameter_one() {
        let g = complete(12);
        let p = GraphProperties::analyze(&g, 2);
        assert!((p.avg_clustering_coefficient - 1.0).abs() < 1e-9);
        assert!((p.effective_diameter - 1.0).abs() < 1e-9);
        assert_eq!(p.num_weakly_connected_components, 1);
        assert!((p.largest_wcc_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chain_has_large_effective_diameter() {
        let g = chain(100);
        let p = GraphProperties::analyze(&g, 3);
        assert!(p.effective_diameter > 20.0);
        assert!(p.avg_clustering_coefficient < 1e-9);
    }

    #[test]
    fn disconnected_graph_reports_components() {
        // Two disjoint chains.
        let mut el = crate::edge_list::EdgeList::new();
        el.push(0, 1);
        el.push(1, 2);
        el.push(3, 4);
        let g = CsrGraph::from_edge_list(&el);
        let labels = weakly_connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        let p = GraphProperties::analyze(&g, 1);
        assert_eq!(p.num_weakly_connected_components, 2);
        assert!((p.largest_wcc_fraction - 0.6).abs() < 1e-9);
    }

    #[test]
    fn bfs_distances_follow_chain() {
        let g = chain(5);
        let d = bfs_distances_undirected(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        // Undirected view: BFS from the last vertex also reaches everything.
        let d_back = bfs_distances_undirected(&g, 4);
        assert_eq!(d_back, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn degree_histograms_sum_to_vertex_count() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        let oh = out_degree_histogram(&g);
        let ih = in_degree_histogram(&g);
        assert_eq!(oh.iter().sum::<usize>(), g.num_vertices());
        assert_eq!(ih.iter().sum::<usize>(), g.num_vertices());
        let edges_from_hist: usize = oh.iter().enumerate().map(|(d, c)| d * c).sum();
        assert_eq!(edges_from_hist, g.num_edges());
    }

    #[test]
    fn scale_free_graph_is_detected() {
        let g = generate_barabasi_albert(&BarabasiAlbertConfig::new(3000, 4).with_seed(7));
        // Out-degree of a BA digraph is nearly constant; use in-degree fit by
        // analyzing the reversed graph via RMAT instead for the out-degree
        // check, and assert the BA in-degree hubs exist.
        let rmat = generate_rmat(&RmatConfig::new(12, 8).with_seed(7));
        let p = GraphProperties::analyze(&rmat, 7);
        assert!(
            p.looks_scale_free(),
            "R-MAT should look scale free: alpha={}, ks={}",
            p.power_law_alpha,
            p.power_law_ks
        );
        assert!(g.vertices().map(|v| g.in_degree(v)).max().unwrap() > 40);
    }

    #[test]
    fn uniform_random_graph_is_not_scale_free() {
        let g = generate_erdos_renyi(&ErdosRenyiConfig::new(4000, 40_000).with_seed(5));
        let p = GraphProperties::analyze(&g, 5);
        assert!(
            !p.looks_scale_free(),
            "ER graph misclassified as scale free: alpha={}, ks={}",
            p.power_law_alpha,
            p.power_law_ks
        );
    }

    #[test]
    fn power_law_fit_recovers_exponent_on_synthetic_data() {
        // Sample degrees from a discrete power law with alpha = 2.5 using the
        // inverse-CDF of the continuous approximation.
        let alpha = 2.5f64;
        let x_min = 2.0f64;
        let mut degrees = Vec::new();
        let mut u = 0.0005f64;
        while u < 1.0 {
            let x = x_min * (1.0 - u).powf(-1.0 / (alpha - 1.0));
            degrees.push(x.round() as usize);
            u += 0.001;
        }
        let (fit, ks) = fit_power_law(&degrees, 2);
        assert!(
            (fit - alpha).abs() < 0.3,
            "fitted alpha {fit} too far from {alpha}"
        );
        assert!(ks < 0.1, "ks {ks} too large");
    }

    #[test]
    fn power_law_fit_degenerates_gracefully_on_tiny_input() {
        let (alpha, ks) = fit_power_law(&[1, 1, 1], 2);
        assert_eq!(alpha, 0.0);
        assert_eq!(ks, 1.0);
    }

    #[test]
    fn estimators_are_deterministic_for_fixed_seed() {
        let g = generate_rmat(&RmatConfig::new(9, 6).with_seed(3));
        let a = GraphProperties::analyze(&g, 11);
        let b = GraphProperties::analyze(&g, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = CsrGraph::from_edges(0, &[]);
        let p = GraphProperties::analyze(&g, 1);
        assert_eq!(p.num_vertices, 0);
        assert_eq!(p.effective_diameter, 0.0);
        assert_eq!(p.num_weakly_connected_components, 0);
    }
}
