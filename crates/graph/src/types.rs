//! Core identifier and count types shared across the workspace.

/// Identifier of a vertex within a graph.
///
/// Vertices are always densely numbered `0..num_vertices`, which lets the CSR
/// representation and the BSP engine index per-vertex state with plain vectors.
pub type VertexId = u32;

/// Number of vertices in a graph.
pub type VertexCount = usize;

/// Number of edges in a graph.
pub type EdgeCount = usize;

/// A directed edge `(source, destination)` with an optional weight.
///
/// Weights default to `1.0` and are only meaningful for algorithms operating
/// on weighted graphs (semi-clustering in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (defaults to 1.0 for unweighted graphs).
    pub weight: f32,
}

impl Edge {
    /// Creates an unweighted (weight 1.0) edge.
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Self {
            src,
            dst,
            weight: 1.0,
        }
    }

    /// Creates a weighted edge.
    pub fn weighted(src: VertexId, dst: VertexId, weight: f32) -> Self {
        Self { src, dst, weight }
    }

    /// Returns the edge with source and destination swapped (same weight).
    pub fn reversed(&self) -> Self {
        Self {
            src: self.dst,
            dst: self.src,
            weight: self.weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_new_defaults_weight_to_one() {
        let e = Edge::new(1, 2);
        assert_eq!(e.src, 1);
        assert_eq!(e.dst, 2);
        assert_eq!(e.weight, 1.0);
    }

    #[test]
    fn edge_weighted_keeps_weight() {
        let e = Edge::weighted(3, 4, 0.25);
        assert_eq!(e.weight, 0.25);
    }

    #[test]
    fn edge_reversed_swaps_endpoints() {
        let e = Edge::weighted(3, 4, 0.5);
        let r = e.reversed();
        assert_eq!(r.src, 4);
        assert_eq!(r.dst, 3);
        assert_eq!(r.weight, 0.5);
    }
}
