//! Incremental graph construction.
//!
//! [`GraphBuilder`] wraps an [`EdgeList`] with convenience
//! methods for incremental construction (deduplication, undirected mirroring,
//! self-loop policy) and freezes the result into a [`CsrGraph`].

use crate::csr::CsrGraph;
use crate::edge_list::EdgeList;
use crate::types::VertexId;

/// Policy for self-loop edges encountered during construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelfLoopPolicy {
    /// Drop self-loops silently (default: the paper's graphs are simple).
    #[default]
    Drop,
    /// Keep self-loops.
    Keep,
}

/// Builder for [`CsrGraph`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: EdgeList,
    self_loops: SelfLoopPolicy,
    dedup: bool,
    undirected: bool,
}

impl GraphBuilder {
    /// Creates a new builder with default policies (drop self-loops, keep
    /// duplicates, directed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for `num_vertices` vertices.
    pub fn with_vertices(num_vertices: usize) -> Self {
        let mut b = Self::new();
        b.edges.ensure_vertices(num_vertices);
        b
    }

    /// Sets the self-loop policy.
    pub fn self_loops(mut self, policy: SelfLoopPolicy) -> Self {
        self.self_loops = policy;
        self
    }

    /// Requests duplicate-edge removal at build time.
    pub fn deduplicate(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Requests undirected mirroring (every edge also added reversed) at
    /// build time.
    pub fn undirected(mut self, yes: bool) -> Self {
        self.undirected = yes;
        self
    }

    /// Adds a directed, unweighted edge.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.add_weighted_edge(src, dst, 1.0)
    }

    /// Adds a directed, weighted edge.
    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, weight: f32) -> &mut Self {
        if src == dst && self.self_loops == SelfLoopPolicy::Drop {
            return self;
        }
        self.edges.push_weighted(src, dst, weight);
        self
    }

    /// Adds every edge from an iterator of `(src, dst)` pairs.
    pub fn extend_edges(
        &mut self,
        it: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> &mut Self {
        for (s, d) in it {
            self.add_edge(s, d);
        }
        self
    }

    /// Ensures the vertex id space covers `n` vertices.
    pub fn ensure_vertices(&mut self, n: usize) -> &mut Self {
        self.edges.ensure_vertices(n);
        self
    }

    /// Current number of staged edges.
    pub fn num_edges(&self) -> usize {
        self.edges.num_edges()
    }

    /// Freezes the builder into a [`CsrGraph`], applying the configured
    /// policies (dedup, undirected mirroring).
    ///
    /// The whole freeze is sorting-free: deduplication orders edges with a
    /// two-round counting (radix) sort and the CSR placement is a counting
    /// build, so ingest costs `O(E + V)` rather than `O(E log E)`.
    pub fn build(self) -> CsrGraph {
        let mut edges = self.edges;
        if self.undirected {
            edges = edges.to_undirected();
        } else if self.dedup {
            edges.dedup();
        }
        CsrGraph::from_edge_list(&edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn drops_self_loops_by_default() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0).add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn keeps_self_loops_when_requested() {
        let mut b = GraphBuilder::new().self_loops(SelfLoopPolicy::Keep);
        b.add_edge(0, 0).add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn deduplicates_when_requested() {
        let mut b = GraphBuilder::new().deduplicate(true);
        b.add_edge(0, 1).add_edge(0, 1).add_edge(1, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn undirected_mirrors_edges() {
        let mut b = GraphBuilder::new().undirected(true);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(1), 2);
        assert_eq!(g.in_degree(1), 2);
    }

    #[test]
    fn with_vertices_reserves_id_space() {
        let b = GraphBuilder::with_vertices(7);
        let g = b.build();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn extend_edges_adds_all() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (2, 3)]);
        assert_eq!(b.num_edges(), 3);
    }
}
