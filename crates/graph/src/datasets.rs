//! Scaled-down analogs of the paper's datasets (Table 2).
//!
//! The paper evaluates PREDIcT on four real graphs: LiveJournal (social,
//! 4.8 M vertices), Wikipedia (web, 11.7 M), Twitter (social, 40.1 M, very
//! dense) and UK-2002 (web, 18.5 M). Those datasets cannot be shipped with
//! this repository, so this module provides deterministic synthetic analogs
//! that preserve the *relative* characteristics that matter for PREDIcT's
//! evaluation:
//!
//! * Wikipedia, UK-2002 and Twitter analogs are **scale-free** R-MAT graphs
//!   (heavy-tailed out-degree, small effective diameter, hub core). The
//!   Twitter analog is much denser than the others, mirroring Table 2 where
//!   Twitter has ~37 edges/vertex versus ~8-16 for the web graphs.
//! * The LiveJournal analog is deliberately **not power-law** in its
//!   out-degree distribution (uniform random edges), reproducing the paper's
//!   footnote 7 observation that LJ's out-degree distribution does not follow
//!   a power law and is therefore consistently harder to sample.
//!
//! Vertex counts are scaled down by roughly three orders of magnitude while
//! the relative ordering of sizes and densities is preserved, so every
//! experiment that sweeps datasets exercises the same qualitative axis as the
//! paper: three scale-free graphs of increasing size/density plus one
//! non-scale-free graph.

use crate::csr::CsrGraph;
use crate::generators::{generate_erdos_renyi, generate_rmat, ErdosRenyiConfig, RmatConfig};
use crate::properties::GraphProperties;

/// Identifier for one of the four dataset analogs of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dataset {
    /// Analog of the LiveJournal social graph (prefix `LJ` in the paper).
    ///
    /// Deliberately *not* scale-free: the paper observes LJ's out-degree
    /// distribution is not a power law, which makes it the hardest dataset
    /// for sample-based prediction.
    LiveJournal,
    /// Analog of the English Wikipedia link graph (prefix `Wiki`).
    Wikipedia,
    /// Analog of the Twitter follower graph (prefix `TW`): the largest and by
    /// far the densest of the four.
    Twitter,
    /// Analog of the UK-2002 web crawl (prefix `UK`).
    Uk2002,
}

impl Dataset {
    /// All four datasets in the order of Table 2.
    pub const ALL: [Dataset; 4] = [
        Dataset::LiveJournal,
        Dataset::Wikipedia,
        Dataset::Twitter,
        Dataset::Uk2002,
    ];

    /// The three scale-free datasets (everything but LiveJournal), i.e. the
    /// graphs for which the paper reports its headline error bands.
    pub const SCALE_FREE: [Dataset; 3] = [Dataset::Wikipedia, Dataset::Twitter, Dataset::Uk2002];

    /// Short prefix used in the paper's plots (LJ / Wiki / TW / UK).
    pub fn prefix(&self) -> &'static str {
        match self {
            Dataset::LiveJournal => "LJ",
            Dataset::Wikipedia => "Wiki",
            Dataset::Twitter => "TW",
            Dataset::Uk2002 => "UK",
        }
    }

    /// Full human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::LiveJournal => "LiveJournal",
            Dataset::Wikipedia => "Wikipedia",
            Dataset::Twitter => "Twitter",
            Dataset::Uk2002 => "UK-2002",
        }
    }

    /// True for the datasets whose degree distribution is scale-free (all but
    /// the LiveJournal analog).
    pub fn is_scale_free(&self) -> bool {
        !matches!(self, Dataset::LiveJournal)
    }

    /// Characteristics of the *real* dataset as reported in Table 2 of the
    /// paper: `(num_nodes, num_edges, size_gb)`.
    pub fn paper_characteristics(&self) -> (u64, u64, f64) {
        match self {
            Dataset::LiveJournal => (4_847_571, 68_993_777, 1.0),
            Dataset::Wikipedia => (11_712_323, 97_652_232, 1.4),
            Dataset::Twitter => (40_103_281, 1_468_365_182, 25.0),
            Dataset::Uk2002 => (18_520_486, 298_113_762, 4.7),
        }
    }

    /// Generator configuration of the scaled-down analog at the default
    /// experiment scale.
    pub fn config(&self) -> DatasetConfig {
        DatasetConfig::new(*self, DatasetScale::Default)
    }

    /// Loads (generates) the analog graph at the default experiment scale.
    pub fn load(&self) -> CsrGraph {
        self.config().generate()
    }

    /// Loads (generates) the analog graph at a reduced scale suitable for
    /// unit tests.
    pub fn load_small(&self) -> CsrGraph {
        DatasetConfig::new(*self, DatasetScale::Small).generate()
    }
}

/// Scale at which a dataset analog is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetScale {
    /// Small graphs (~1-4 k vertices) for unit tests.
    Small,
    /// Default experiment scale (~16-64 k vertices) used by the benchmark
    /// harness; large enough for sampling ratios down to 1% to be meaningful,
    /// small enough that the full figure sweeps finish in minutes.
    Default,
    /// Larger graphs (~64-256 k vertices) for stress runs.
    Large,
}

/// Concrete generator parameters for one dataset analog.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Which dataset this configures.
    pub dataset: Dataset,
    /// The scale the analog is generated at.
    pub scale: DatasetScale,
    /// Number of vertices of the analog.
    pub num_vertices: usize,
    /// Target average out-degree of the analog.
    pub avg_degree: usize,
    /// Seed used by the deterministic generator.
    pub seed: u64,
}

impl DatasetConfig {
    /// Builds the generator parameters for `dataset` at `scale`.
    ///
    /// The vertex-count ratios mirror Table 2 (LJ < Wiki < UK < TW) and the
    /// density ratios mirror the edge/vertex ratios of the real graphs
    /// (Twitter ≈ 37, UK ≈ 16, Wiki ≈ 8, LJ ≈ 14).
    pub fn new(dataset: Dataset, scale: DatasetScale) -> Self {
        // log2(num_vertices) at Default scale; Small is 3 levels smaller,
        // Large is 2 levels bigger.
        let base_log2 = match dataset {
            Dataset::LiveJournal => 13, // 8k
            Dataset::Wikipedia => 14,   // 16k
            Dataset::Uk2002 => 14,      // 16k (real UK has more nodes than Wiki but similar order)
            Dataset::Twitter => 15,     // 32k - the largest
        };
        let log2 = match scale {
            DatasetScale::Small => base_log2 - 3,
            DatasetScale::Default => base_log2,
            DatasetScale::Large => base_log2 + 2,
        };
        let avg_degree = match dataset {
            Dataset::LiveJournal => 14,
            Dataset::Wikipedia => 8,
            Dataset::Uk2002 => 16,
            Dataset::Twitter => 37,
        };
        let seed = match dataset {
            Dataset::LiveJournal => 0xD1,
            Dataset::Wikipedia => 0xD2,
            Dataset::Twitter => 0xD3,
            Dataset::Uk2002 => 0xD4,
        };
        Self {
            dataset,
            scale,
            num_vertices: 1usize << log2,
            avg_degree,
            seed,
        }
    }

    /// Generates the analog graph. Deterministic for a given configuration.
    pub fn generate(&self) -> CsrGraph {
        let log2 = self.num_vertices.trailing_zeros();
        if self.dataset.is_scale_free() {
            // Strongly skewed quadrant probabilities: real web/social graphs
            // concentrate edges in a small core and mix slowly, which is what
            // makes their PageRank iteration counts transferable from sample
            // to full graph (the property PREDIcT relies on). Each analog
            // gets a slightly different skew so the three scale-free graphs
            // are not structurally identical.
            let (a, b, c) = match self.dataset {
                Dataset::Wikipedia => (0.65, 0.18, 0.12),
                Dataset::Uk2002 => (0.68, 0.17, 0.10),
                Dataset::Twitter => (0.62, 0.19, 0.14),
                Dataset::LiveJournal => unreachable!(),
            };
            generate_rmat(
                &RmatConfig::new(log2, self.avg_degree)
                    .with_seed(self.seed)
                    .with_probabilities(a, b, c),
            )
        } else {
            // LiveJournal analog: uniform random edges, hence a binomial
            // (non-power-law) out-degree distribution.
            generate_erdos_renyi(
                &ErdosRenyiConfig::new(self.num_vertices, self.num_vertices * self.avg_degree)
                    .with_seed(self.seed),
            )
        }
    }
}

/// One row of the Table 2 style dataset summary produced by
/// [`table2_summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Which dataset the row describes.
    pub dataset: Dataset,
    /// The paper's prefix (LJ / Wiki / TW / UK).
    pub prefix: &'static str,
    /// Vertex count of the analog.
    pub num_vertices: usize,
    /// Edge count of the analog.
    pub num_edges: usize,
    /// In-memory size of the analog in bytes (the analog of Table 2's size
    /// column).
    pub size_bytes: usize,
    /// Vertex count of the real dataset (from Table 2).
    pub paper_nodes: u64,
    /// Edge count of the real dataset (from Table 2).
    pub paper_edges: u64,
    /// Size in GB of the real dataset (from Table 2).
    pub paper_size_gb: f64,
    /// Structural properties of the analog.
    pub properties: GraphProperties,
}

/// Generates every dataset analog at `scale` and summarizes it next to the
/// paper's Table 2 numbers. This is what the `table2_datasets` experiment
/// binary prints.
pub fn table2_summary(scale: DatasetScale) -> Vec<DatasetSummary> {
    Dataset::ALL
        .iter()
        .map(|&dataset| {
            let cfg = DatasetConfig::new(dataset, scale);
            let graph = cfg.generate();
            let (paper_nodes, paper_edges, paper_size_gb) = dataset.paper_characteristics();
            DatasetSummary {
                dataset,
                prefix: dataset.prefix(),
                num_vertices: graph.num_vertices(),
                num_edges: graph.num_edges(),
                size_bytes: graph.size_bytes(),
                paper_nodes,
                paper_edges,
                paper_size_gb,
                properties: GraphProperties::analyze(&graph, cfg.seed),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_match_the_paper() {
        assert_eq!(Dataset::LiveJournal.prefix(), "LJ");
        assert_eq!(Dataset::Wikipedia.prefix(), "Wiki");
        assert_eq!(Dataset::Twitter.prefix(), "TW");
        assert_eq!(Dataset::Uk2002.prefix(), "UK");
    }

    #[test]
    fn all_contains_each_dataset_once() {
        assert_eq!(Dataset::ALL.len(), 4);
        let mut names: Vec<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn scale_free_set_excludes_livejournal() {
        assert!(!Dataset::SCALE_FREE.contains(&Dataset::LiveJournal));
        assert!(!Dataset::LiveJournal.is_scale_free());
        assert!(Dataset::Twitter.is_scale_free());
    }

    #[test]
    fn paper_characteristics_match_table2() {
        let (n, e, gb) = Dataset::Twitter.paper_characteristics();
        assert_eq!(n, 40_103_281);
        assert_eq!(e, 1_468_365_182);
        assert!((gb - 25.0).abs() < 1e-9);
    }

    #[test]
    fn small_scale_graphs_generate_quickly_and_deterministically() {
        for &d in &Dataset::ALL {
            let a = d.load_small();
            let b = d.load_small();
            assert_eq!(a.num_vertices(), b.num_vertices());
            assert_eq!(a.num_edges(), b.num_edges());
            assert!(a.num_vertices() >= 1 << 10);
        }
    }

    #[test]
    fn twitter_analog_is_densest_and_largest() {
        let summaries: Vec<_> = Dataset::ALL
            .iter()
            .map(|d| {
                let g = d.load_small();
                (d, g.num_vertices(), g.avg_degree())
            })
            .collect();
        let tw = summaries
            .iter()
            .find(|(d, _, _)| **d == Dataset::Twitter)
            .unwrap();
        for (d, n, deg) in &summaries {
            if **d != Dataset::Twitter {
                assert!(tw.1 >= *n, "Twitter analog should have the most vertices");
                assert!(tw.2 > *deg, "Twitter analog should be the densest");
            }
        }
    }

    #[test]
    fn scale_free_analogs_look_scale_free_and_lj_does_not() {
        // Use the Default scale for Wikipedia (fast enough) and Small for the
        // rest to keep the test quick; the property is scale-independent.
        let wiki = Dataset::Wikipedia.load_small();
        let lj = Dataset::LiveJournal.load_small();
        let p_wiki = GraphProperties::analyze(&wiki, 1);
        let p_lj = GraphProperties::analyze(&lj, 1);
        assert!(
            p_wiki.looks_scale_free(),
            "Wikipedia analog should be scale free (alpha={}, ks={})",
            p_wiki.power_law_alpha,
            p_wiki.power_law_ks
        );
        assert!(
            !p_lj.looks_scale_free(),
            "LiveJournal analog should NOT be scale free (alpha={}, ks={})",
            p_lj.power_law_alpha,
            p_lj.power_law_ks
        );
    }

    #[test]
    fn config_scales_are_ordered() {
        let small = DatasetConfig::new(Dataset::Wikipedia, DatasetScale::Small);
        let default = DatasetConfig::new(Dataset::Wikipedia, DatasetScale::Default);
        let large = DatasetConfig::new(Dataset::Wikipedia, DatasetScale::Large);
        assert!(small.num_vertices < default.num_vertices);
        assert!(default.num_vertices < large.num_vertices);
    }

    #[test]
    fn table2_summary_reports_all_datasets() {
        let rows = table2_summary(DatasetScale::Small);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.num_vertices > 0);
            assert!(row.num_edges > 0);
            assert!(row.size_bytes > 0);
            assert!(row.paper_nodes > 1_000_000);
        }
    }
}
