//! Scaled-down analogs of the paper's datasets (Table 2).
//!
//! The paper evaluates PREDIcT on four real graphs: LiveJournal (social,
//! 4.8 M vertices), Wikipedia (web, 11.7 M), Twitter (social, 40.1 M, very
//! dense) and UK-2002 (web, 18.5 M). Those datasets cannot be shipped with
//! this repository, so this module provides deterministic synthetic analogs
//! that preserve the *relative* characteristics that matter for PREDIcT's
//! evaluation:
//!
//! * Wikipedia, UK-2002 and Twitter analogs are **scale-free** R-MAT graphs
//!   (heavy-tailed out-degree, small effective diameter, hub core). The
//!   Twitter analog is much denser than the others, mirroring Table 2 where
//!   Twitter has ~37 edges/vertex versus ~8-16 for the web graphs.
//! * The LiveJournal analog is deliberately **not power-law** in its
//!   out-degree distribution (uniform random edges), reproducing the paper's
//!   footnote 7 observation that LJ's out-degree distribution does not follow
//!   a power law and is therefore consistently harder to sample.
//!
//! Vertex counts are scaled down by roughly three orders of magnitude while
//! the relative ordering of sizes and densities is preserved, so every
//! experiment that sweeps datasets exercises the same qualitative axis as the
//! paper: three scale-free graphs of increasing size/density plus one
//! non-scale-free graph.

use crate::csr::CsrGraph;
use crate::generators::{
    generate_bipartite, generate_dcsbm, generate_erdos_renyi, generate_grid_road, generate_rmat,
    BipartiteConfig, DcsbmConfig, ErdosRenyiConfig, GridRoadConfig, RmatConfig,
};
use crate::properties::GraphProperties;

/// Identifier for a dataset analog: the four graphs of the paper's Table 2
/// plus the extended regimes the reproduction opens beyond it (road grid,
/// bipartite web, degree-corrected block model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dataset {
    /// Analog of the LiveJournal social graph (prefix `LJ` in the paper).
    ///
    /// Deliberately *not* scale-free: the paper observes LJ's out-degree
    /// distribution is not a power law, which makes it the hardest dataset
    /// for sample-based prediction.
    LiveJournal,
    /// Analog of the English Wikipedia link graph (prefix `Wiki`).
    Wikipedia,
    /// Analog of the Twitter follower graph (prefix `TW`): the largest and by
    /// far the densest of the four.
    Twitter,
    /// Analog of the UK-2002 web crawl (prefix `UK`).
    Uk2002,
    /// 2-D lattice road network
    /// ([`generate_grid_road`]):
    /// huge effective diameter, degree ≤ 4, no hub core — the structural
    /// opposite of the Table 2 graphs.
    GridRoad,
    /// Two-mode web graph
    /// ([`generate_bipartite`]):
    /// every edge crosses between a uniform "user" side and a power-law
    /// "site" side.
    BipartiteWeb,
    /// Degree-corrected stochastic block model
    /// ([`generate_dcsbm`]): community
    /// structure plus heavy-tailed degrees inside every block.
    DcSbm,
}

impl Dataset {
    /// The four datasets of the paper's Table 2, in its order.
    pub const ALL: [Dataset; 4] = [
        Dataset::LiveJournal,
        Dataset::Wikipedia,
        Dataset::Twitter,
        Dataset::Uk2002,
    ];

    /// The three scale-free paper datasets (everything in [`Dataset::ALL`]
    /// but LiveJournal), i.e. the graphs for which the paper reports its
    /// headline error bands.
    pub const SCALE_FREE: [Dataset; 3] = [Dataset::Wikipedia, Dataset::Twitter, Dataset::Uk2002];

    /// The extended datasets beyond Table 2, swept by the
    /// `table2_new_datasets` and `fig9_new_generators` experiment binaries.
    pub const EXTENDED: [Dataset; 3] = [Dataset::GridRoad, Dataset::BipartiteWeb, Dataset::DcSbm];

    /// Short prefix used in plots (the paper's LJ / Wiki / TW / UK, plus
    /// ROAD / BIP / DCSBM for the extended datasets).
    pub fn prefix(&self) -> &'static str {
        match self {
            Dataset::LiveJournal => "LJ",
            Dataset::Wikipedia => "Wiki",
            Dataset::Twitter => "TW",
            Dataset::Uk2002 => "UK",
            Dataset::GridRoad => "ROAD",
            Dataset::BipartiteWeb => "BIP",
            Dataset::DcSbm => "DCSBM",
        }
    }

    /// Full human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::LiveJournal => "LiveJournal",
            Dataset::Wikipedia => "Wikipedia",
            Dataset::Twitter => "Twitter",
            Dataset::Uk2002 => "UK-2002",
            Dataset::GridRoad => "Grid road network",
            Dataset::BipartiteWeb => "Bipartite web",
            Dataset::DcSbm => "DC-SBM communities",
        }
    }

    /// True for the datasets whose out-degree distribution is heavy-tailed
    /// (the paper analogs except LiveJournal; of the extended set, the
    /// bipartite web's site side and the DC-SBM's propensity tail qualify,
    /// the road grid's bounded degrees do not).
    pub fn is_scale_free(&self) -> bool {
        !matches!(self, Dataset::LiveJournal | Dataset::GridRoad)
    }

    /// Characteristics of the *real* dataset as reported in Table 2 of the
    /// paper: `(num_nodes, num_edges, size_gb)`. The extended datasets have
    /// no Table 2 row and report zeros.
    pub fn paper_characteristics(&self) -> (u64, u64, f64) {
        match self {
            Dataset::LiveJournal => (4_847_571, 68_993_777, 1.0),
            Dataset::Wikipedia => (11_712_323, 97_652_232, 1.4),
            Dataset::Twitter => (40_103_281, 1_468_365_182, 25.0),
            Dataset::Uk2002 => (18_520_486, 298_113_762, 4.7),
            Dataset::GridRoad | Dataset::BipartiteWeb | Dataset::DcSbm => (0, 0, 0.0),
        }
    }

    /// Generator configuration of the scaled-down analog at the default
    /// experiment scale.
    pub fn config(&self) -> DatasetConfig {
        DatasetConfig::new(*self, DatasetScale::Default)
    }

    /// Loads (generates) the analog graph at the default experiment scale.
    pub fn load(&self) -> CsrGraph {
        self.config().generate()
    }

    /// Loads (generates) the analog graph at a reduced scale suitable for
    /// unit tests.
    pub fn load_small(&self) -> CsrGraph {
        DatasetConfig::new(*self, DatasetScale::Small).generate()
    }
}

/// Scale at which a dataset analog is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetScale {
    /// Small graphs (~1-4 k vertices) for unit tests.
    Small,
    /// Default experiment scale (~16-64 k vertices) used by the benchmark
    /// harness; large enough for sampling ratios down to 1% to be meaningful,
    /// small enough that the full figure sweeps finish in minutes.
    Default,
    /// Larger graphs (~64-256 k vertices) for stress runs.
    Large,
}

/// Concrete generator parameters for one dataset analog.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Which dataset this configures.
    pub dataset: Dataset,
    /// The scale the analog is generated at.
    pub scale: DatasetScale,
    /// Number of vertices of the analog.
    pub num_vertices: usize,
    /// Target average out-degree of the analog.
    pub avg_degree: usize,
    /// Seed used by the deterministic generator.
    pub seed: u64,
}

impl DatasetConfig {
    /// Builds the generator parameters for `dataset` at `scale`.
    ///
    /// The vertex-count ratios mirror Table 2 (LJ < Wiki < UK < TW) and the
    /// density ratios mirror the edge/vertex ratios of the real graphs
    /// (Twitter ≈ 37, UK ≈ 16, Wiki ≈ 8, LJ ≈ 14).
    pub fn new(dataset: Dataset, scale: DatasetScale) -> Self {
        // log2(num_vertices) at Default scale; Small is 3 levels smaller,
        // Large is 2 levels bigger.
        let base_log2 = match dataset {
            Dataset::LiveJournal => 13,  // 8k
            Dataset::Wikipedia => 14,    // 16k
            Dataset::Uk2002 => 14,       // 16k (real UK has more nodes than Wiki but similar order)
            Dataset::Twitter => 15,      // 32k - the largest
            Dataset::GridRoad => 14,     // 16k intersections (128x128 grid)
            Dataset::BipartiteWeb => 14, // 16k users + sites
            Dataset::DcSbm => 14,        // 16k across 8 communities
        };
        let log2 = match scale {
            DatasetScale::Small => base_log2 - 3,
            DatasetScale::Default => base_log2,
            DatasetScale::Large => base_log2 + 2,
        };
        let avg_degree = match dataset {
            Dataset::LiveJournal => 14,
            Dataset::Wikipedia => 8,
            Dataset::Uk2002 => 16,
            Dataset::Twitter => 37,
            Dataset::GridRoad => 4, // lattice bound; the generator ignores it
            Dataset::BipartiteWeb => 8,
            Dataset::DcSbm => 10,
        };
        let seed = match dataset {
            Dataset::LiveJournal => 0xD1,
            Dataset::Wikipedia => 0xD2,
            Dataset::Twitter => 0xD3,
            Dataset::Uk2002 => 0xD4,
            Dataset::GridRoad => 0xD5,
            Dataset::BipartiteWeb => 0xD6,
            Dataset::DcSbm => 0xD7,
        };
        Self {
            dataset,
            scale,
            num_vertices: 1usize << log2,
            avg_degree,
            seed,
        }
    }

    /// Generates the analog graph. Deterministic for a given configuration.
    pub fn generate(&self) -> CsrGraph {
        let log2 = self.num_vertices.trailing_zeros();
        match self.dataset {
            Dataset::GridRoad => {
                // Near-square grid covering exactly `num_vertices`
                // intersections (both dimensions are powers of two).
                let width = 1usize << (log2 / 2);
                let height = self.num_vertices / width;
                return generate_grid_road(
                    &GridRoadConfig::new(width, height).with_seed(self.seed),
                );
            }
            Dataset::BipartiteWeb => {
                // Many "users", an eighth as many "sites"; edge budget follows
                // the configured density.
                let num_right = (self.num_vertices / 8).max(1);
                let num_left = self.num_vertices - num_right;
                return generate_bipartite(
                    &BipartiteConfig::new(num_left, num_right, self.num_vertices * self.avg_degree)
                        .with_seed(self.seed),
                );
            }
            Dataset::DcSbm => {
                return generate_dcsbm(
                    &DcsbmConfig::new(self.num_vertices, 8, self.avg_degree).with_seed(self.seed),
                );
            }
            _ => {}
        }
        if self.dataset.is_scale_free() {
            // Strongly skewed quadrant probabilities: real web/social graphs
            // concentrate edges in a small core and mix slowly, which is what
            // makes their PageRank iteration counts transferable from sample
            // to full graph (the property PREDIcT relies on). Each analog
            // gets a slightly different skew so the three scale-free graphs
            // are not structurally identical.
            let (a, b, c) = match self.dataset {
                Dataset::Wikipedia => (0.65, 0.18, 0.12),
                Dataset::Uk2002 => (0.68, 0.17, 0.10),
                Dataset::Twitter => (0.62, 0.19, 0.14),
                _ => unreachable!("non-R-MAT datasets are generated above"),
            };
            generate_rmat(
                &RmatConfig::new(log2, self.avg_degree)
                    .with_seed(self.seed)
                    .with_probabilities(a, b, c),
            )
        } else {
            // LiveJournal analog: uniform random edges, hence a binomial
            // (non-power-law) out-degree distribution.
            generate_erdos_renyi(
                &ErdosRenyiConfig::new(self.num_vertices, self.num_vertices * self.avg_degree)
                    .with_seed(self.seed),
            )
        }
    }
}

/// One row of the Table 2 style dataset summary produced by
/// [`table2_summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Which dataset the row describes.
    pub dataset: Dataset,
    /// The paper's prefix (LJ / Wiki / TW / UK).
    pub prefix: &'static str,
    /// Vertex count of the analog.
    pub num_vertices: usize,
    /// Edge count of the analog.
    pub num_edges: usize,
    /// In-memory size of the analog in bytes (the analog of Table 2's size
    /// column).
    pub size_bytes: usize,
    /// Vertex count of the real dataset (from Table 2).
    pub paper_nodes: u64,
    /// Edge count of the real dataset (from Table 2).
    pub paper_edges: u64,
    /// Size in GB of the real dataset (from Table 2).
    pub paper_size_gb: f64,
    /// Structural properties of the analog.
    pub properties: GraphProperties,
}

/// Generates every dataset analog at `scale` and summarizes it next to the
/// paper's Table 2 numbers. This is what the `table2_datasets` experiment
/// binary prints.
pub fn table2_summary(scale: DatasetScale) -> Vec<DatasetSummary> {
    dataset_summary(&Dataset::ALL, scale)
}

/// [`table2_summary`] for an arbitrary dataset selection — the
/// `table2_new_datasets` binary runs it over [`Dataset::EXTENDED`] (whose
/// `paper_*` columns are zero: those analogs have no Table 2 row).
pub fn dataset_summary(datasets: &[Dataset], scale: DatasetScale) -> Vec<DatasetSummary> {
    datasets
        .iter()
        .map(|&dataset| {
            let cfg = DatasetConfig::new(dataset, scale);
            let graph = cfg.generate();
            let (paper_nodes, paper_edges, paper_size_gb) = dataset.paper_characteristics();
            DatasetSummary {
                dataset,
                prefix: dataset.prefix(),
                num_vertices: graph.num_vertices(),
                num_edges: graph.num_edges(),
                size_bytes: graph.size_bytes(),
                paper_nodes,
                paper_edges,
                paper_size_gb,
                properties: GraphProperties::analyze(&graph, cfg.seed),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_match_the_paper() {
        assert_eq!(Dataset::LiveJournal.prefix(), "LJ");
        assert_eq!(Dataset::Wikipedia.prefix(), "Wiki");
        assert_eq!(Dataset::Twitter.prefix(), "TW");
        assert_eq!(Dataset::Uk2002.prefix(), "UK");
    }

    #[test]
    fn all_contains_each_dataset_once() {
        assert_eq!(Dataset::ALL.len(), 4);
        let mut names: Vec<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn scale_free_set_excludes_livejournal() {
        assert!(!Dataset::SCALE_FREE.contains(&Dataset::LiveJournal));
        assert!(!Dataset::LiveJournal.is_scale_free());
        assert!(Dataset::Twitter.is_scale_free());
    }

    #[test]
    fn paper_characteristics_match_table2() {
        let (n, e, gb) = Dataset::Twitter.paper_characteristics();
        assert_eq!(n, 40_103_281);
        assert_eq!(e, 1_468_365_182);
        assert!((gb - 25.0).abs() < 1e-9);
    }

    #[test]
    fn small_scale_graphs_generate_quickly_and_deterministically() {
        for &d in &Dataset::ALL {
            let a = d.load_small();
            let b = d.load_small();
            assert_eq!(a.num_vertices(), b.num_vertices());
            assert_eq!(a.num_edges(), b.num_edges());
            assert!(a.num_vertices() >= 1 << 10);
        }
    }

    #[test]
    fn twitter_analog_is_densest_and_largest() {
        let summaries: Vec<_> = Dataset::ALL
            .iter()
            .map(|d| {
                let g = d.load_small();
                (d, g.num_vertices(), g.avg_degree())
            })
            .collect();
        let tw = summaries
            .iter()
            .find(|(d, _, _)| **d == Dataset::Twitter)
            .unwrap();
        for (d, n, deg) in &summaries {
            if **d != Dataset::Twitter {
                assert!(tw.1 >= *n, "Twitter analog should have the most vertices");
                assert!(tw.2 > *deg, "Twitter analog should be the densest");
            }
        }
    }

    #[test]
    fn scale_free_analogs_look_scale_free_and_lj_does_not() {
        // Use the Default scale for Wikipedia (fast enough) and Small for the
        // rest to keep the test quick; the property is scale-independent.
        let wiki = Dataset::Wikipedia.load_small();
        let lj = Dataset::LiveJournal.load_small();
        let p_wiki = GraphProperties::analyze(&wiki, 1);
        let p_lj = GraphProperties::analyze(&lj, 1);
        assert!(
            p_wiki.looks_scale_free(),
            "Wikipedia analog should be scale free (alpha={}, ks={})",
            p_wiki.power_law_alpha,
            p_wiki.power_law_ks
        );
        assert!(
            !p_lj.looks_scale_free(),
            "LiveJournal analog should NOT be scale free (alpha={}, ks={})",
            p_lj.power_law_alpha,
            p_lj.power_law_ks
        );
    }

    #[test]
    fn extended_datasets_generate_deterministically() {
        for &d in &Dataset::EXTENDED {
            let a = d.load_small();
            let b = d.load_small();
            assert_eq!(a.num_vertices(), b.num_vertices());
            assert_eq!(a.num_edges(), b.num_edges());
            for v in a.vertices() {
                assert_eq!(a.out_neighbors(v), b.out_neighbors(v), "{}", d.name());
            }
            assert!(a.num_vertices() >= 1 << 10);
            assert!(a.num_edges() > 0);
        }
    }

    #[test]
    fn extended_prefixes_and_characteristics() {
        assert_eq!(Dataset::GridRoad.prefix(), "ROAD");
        assert_eq!(Dataset::BipartiteWeb.prefix(), "BIP");
        assert_eq!(Dataset::DcSbm.prefix(), "DCSBM");
        for &d in &Dataset::EXTENDED {
            assert!(!Dataset::ALL.contains(&d), "EXTENDED must stay off Table 2");
            assert_eq!(d.paper_characteristics(), (0, 0, 0.0));
        }
        assert!(!Dataset::GridRoad.is_scale_free());
    }

    #[test]
    fn grid_road_analog_has_bounded_degrees_and_large_diameter() {
        let g = Dataset::GridRoad.load_small();
        let max_deg = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        assert!(max_deg <= 4);
        let props = GraphProperties::analyze(&g, 1);
        let wiki = GraphProperties::analyze(&Dataset::Wikipedia.load_small(), 1);
        assert!(
            props.effective_diameter > wiki.effective_diameter * 3.0,
            "road grid should dwarf the web analog's diameter ({} vs {})",
            props.effective_diameter,
            wiki.effective_diameter
        );
    }

    #[test]
    fn dataset_summary_covers_extended_set() {
        let rows = dataset_summary(&Dataset::EXTENDED, DatasetScale::Small);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.num_vertices > 0);
            assert!(row.num_edges > 0);
            assert_eq!(row.paper_nodes, 0);
        }
    }

    #[test]
    fn config_scales_are_ordered() {
        let small = DatasetConfig::new(Dataset::Wikipedia, DatasetScale::Small);
        let default = DatasetConfig::new(Dataset::Wikipedia, DatasetScale::Default);
        let large = DatasetConfig::new(Dataset::Wikipedia, DatasetScale::Large);
        assert!(small.num_vertices < default.num_vertices);
        assert!(default.num_vertices < large.num_vertices);
    }

    #[test]
    fn table2_summary_reports_all_datasets() {
        let rows = table2_summary(DatasetScale::Small);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.num_vertices > 0);
            assert!(row.num_edges > 0);
            assert!(row.size_bytes > 0);
            assert!(row.paper_nodes > 1_000_000);
        }
    }
}
