//! Compressed sparse row (CSR) directed graph.
//!
//! [`CsrGraph`] is the frozen, read-optimized graph representation used by the
//! BSP engine and the samplers. It stores both the out-adjacency (for message
//! sending and random walks) and the in-adjacency (for in-degree statistics
//! and property analysis), plus optional per-out-edge weights for weighted
//! algorithms such as semi-clustering.

use crate::edge_list::EdgeList;
use crate::types::{Edge, VertexId};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Immutable directed graph in compressed-sparse-row form.
///
/// Vertices are densely numbered `0..num_vertices()`. Out-neighbors of vertex
/// `v` are `out_offsets[v]..out_offsets[v + 1]` into `out_targets`; the
/// in-adjacency is stored symmetrically. Edge weights, when present, are
/// aligned with `out_targets`.
///
/// Construction is sorting-free end to end: both adjacency directions are
/// placed by a two-pass counting build (degree histogram → prefix offsets →
/// direct placement), and the degree ordering consumed by Biased Random Jump
/// seed selection is produced by a counting-bucket pass cached on the graph.
///
/// `Deserialize` exists for the persistent artifact store (`predict_store`),
/// which round-trips sampled subgraphs across process restarts; the skipped
/// degree-order cache starts empty and is rebuilt on first use.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CsrGraph {
    num_vertices: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<VertexId>,
    out_weights: Option<Vec<f32>>,
    in_offsets: Vec<usize>,
    in_sources: Vec<VertexId>,
    /// Lazily computed [`Self::vertices_by_out_degree_desc`] cache. Derived
    /// data: excluded from serialization and rebuilt on demand.
    #[serde(skip)]
    degree_order: OnceLock<Vec<VertexId>>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list. Duplicate edges are preserved
    /// as parallel edges; call [`EdgeList::dedup`] first if that is undesired.
    pub fn from_edge_list(list: &EdgeList) -> Self {
        Self::from_edges(list.num_vertices(), list.edges())
    }

    /// Builds a CSR graph from a slice of edges over `num_vertices` vertices.
    ///
    /// # Panics
    ///
    /// Panics if any edge references a vertex `>= num_vertices`.
    pub fn from_edges(num_vertices: usize, edges: &[Edge]) -> Self {
        let weighted = edges.iter().any(|e| e.weight != 1.0);

        let mut out_degree = vec![0usize; num_vertices];
        let mut in_degree = vec![0usize; num_vertices];
        for e in edges {
            assert!(
                (e.src as usize) < num_vertices && (e.dst as usize) < num_vertices,
                "edge ({}, {}) out of bounds for {} vertices",
                e.src,
                e.dst,
                num_vertices
            );
            out_degree[e.src as usize] += 1;
            in_degree[e.dst as usize] += 1;
        }

        let out_offsets = prefix_sum(&out_degree);
        let in_offsets = prefix_sum(&in_degree);
        let num_edges = edges.len();

        let mut out_targets = vec![0 as VertexId; num_edges];
        let mut out_weights = if weighted {
            Some(vec![1.0f32; num_edges])
        } else {
            None
        };
        let mut in_sources = vec![0 as VertexId; num_edges];

        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for e in edges {
            let oc = &mut out_cursor[e.src as usize];
            out_targets[*oc] = e.dst;
            if let Some(w) = out_weights.as_mut() {
                w[*oc] = e.weight;
            }
            *oc += 1;

            let ic = &mut in_cursor[e.dst as usize];
            in_sources[*ic] = e.src;
            *ic += 1;
        }

        Self {
            num_vertices,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            degree_order: OnceLock::new(),
        }
    }

    /// Builds a CSR graph directly from pre-assembled out-adjacency arrays
    /// (offsets must be a valid prefix-sum over `num_vertices + 1` entries and
    /// every target `< num_vertices`). The in-adjacency is derived with the
    /// same counting pass [`Self::from_edges`] uses, visiting the out-edges in
    /// CSR order — identical to building from the equivalent edge list. Used
    /// by [`crate::subgraph::induced_subgraph`] to skip the intermediate
    /// edge-list materialization.
    pub(crate) fn from_csr_parts(
        num_vertices: usize,
        out_offsets: Vec<usize>,
        out_targets: Vec<VertexId>,
        out_weights: Option<Vec<f32>>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), num_vertices + 1);
        debug_assert_eq!(out_offsets.last().copied().unwrap_or(0), out_targets.len());

        let mut in_degree = vec![0usize; num_vertices];
        for &dst in &out_targets {
            in_degree[dst as usize] += 1;
        }
        let in_offsets = prefix_sum(&in_degree);
        let mut in_sources = vec![0 as VertexId; out_targets.len()];
        let mut in_cursor = in_offsets.clone();
        for v in 0..num_vertices {
            for &dst in &out_targets[out_offsets[v]..out_offsets[v + 1]] {
                let c = &mut in_cursor[dst as usize];
                in_sources[*c] = v as VertexId;
                *c += 1;
            }
        }

        Self {
            num_vertices,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            degree_order: OnceLock::new(),
        }
    }

    /// Number of vertices in the graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges in the graph.
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// True when the graph stores per-edge weights.
    pub fn is_weighted(&self) -> bool {
        self.out_weights.is_some()
    }

    /// Out-degree of vertex `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// In-degree of vertex `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Out-neighbors of vertex `v`.
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// Weights of the out-edges of `v`, aligned with [`Self::out_neighbors`].
    /// Returns `None` for unweighted graphs.
    pub fn out_weights(&self, v: VertexId) -> Option<&[f32]> {
        let v = v as usize;
        self.out_weights
            .as_ref()
            .map(|w| &w[self.out_offsets[v]..self.out_offsets[v + 1]])
    }

    /// In-neighbors (sources of incoming edges) of vertex `v`.
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices as VertexId
    }

    /// Iterates over all directed edges as `(src, dst, weight)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, f32)> + '_ {
        (0..self.num_vertices as VertexId).flat_map(move |v| {
            let nbrs = self.out_neighbors(v);
            let ws = self.out_weights(v);
            nbrs.iter().enumerate().map(move |(i, &d)| {
                let w = ws.map(|w| w[i]).unwrap_or(1.0);
                (v, d, w)
            })
        })
    }

    /// Average out-degree (`num_edges / num_vertices`), 0.0 for empty graphs.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices as f64
        }
    }

    /// Vertices ordered by descending out-degree (ties by ascending vertex
    /// id). Used by Biased Random Jump seed selection and by the
    /// critical-path worker model.
    ///
    /// Computed once per graph by a stable counting-bucket pass (`O(V +
    /// max_degree)`, no comparison sort) and cached, so samplers that restart
    /// from the hub core pay for the ordering only on their first draw
    /// instead of re-sorting the full graph on every sample.
    pub fn vertices_by_out_degree_desc(&self) -> &[VertexId] {
        self.degree_order.get_or_init(|| {
            let max_degree = (0..self.num_vertices)
                .map(|v| self.out_offsets[v + 1] - self.out_offsets[v])
                .max()
                .unwrap_or(0);
            // Stable counting sort by `max_degree - degree`: descending
            // degree, ties in ascending vertex order — exactly the order a
            // stable `sort_by_key(Reverse(degree))` produces.
            let mut counts = vec![0usize; max_degree + 1];
            for v in 0..self.num_vertices {
                let degree = self.out_offsets[v + 1] - self.out_offsets[v];
                counts[max_degree - degree] += 1;
            }
            let mut cursor = prefix_sum(&counts);
            let mut order = vec![0 as VertexId; self.num_vertices];
            for v in 0..self.num_vertices {
                let degree = self.out_offsets[v + 1] - self.out_offsets[v];
                let c = &mut cursor[max_degree - degree];
                order[*c] = v as VertexId;
                *c += 1;
            }
            order
        })
    }

    /// Converts back to an edge list (useful for re-sampling or re-weighting).
    pub fn to_edge_list(&self) -> EdgeList {
        let mut el = EdgeList::with_capacity(self.num_edges());
        el.ensure_vertices(self.num_vertices);
        for (s, d, w) in self.edges() {
            el.push_weighted(s, d, w);
        }
        el
    }

    /// Rough in-memory footprint in bytes of the graph structure, used by the
    /// dataset presets to report a "size" column analogous to Table 2.
    pub fn size_bytes(&self) -> usize {
        self.out_offsets.len() * std::mem::size_of::<usize>()
            + self.in_offsets.len() * std::mem::size_of::<usize>()
            + self.out_targets.len() * std::mem::size_of::<VertexId>()
            + self.in_sources.len() * std::mem::size_of::<VertexId>()
            + self
                .out_weights
                .as_ref()
                .map(|w| w.len() * std::mem::size_of::<f32>())
                .unwrap_or(0)
    }
}

pub(crate) fn prefix_sum(counts: &[usize]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &c in counts {
        acc += c;
        offsets.push(acc);
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let el: EdgeList = [(0u32, 1u32), (0, 2), (1, 3), (2, 3)].into_iter().collect();
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(!g.is_weighted());
        assert_eq!(g.avg_degree(), 1.0);
    }

    #[test]
    fn out_and_in_adjacency_are_consistent() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
        let mut n0: Vec<_> = g.out_neighbors(0).to_vec();
        n0.sort();
        assert_eq!(n0, vec![1, 2]);
        let mut i3: Vec<_> = g.in_neighbors(3).to_vec();
        i3.sort();
        assert_eq!(i3, vec![1, 2]);
    }

    #[test]
    fn weighted_graph_preserves_weights() {
        let mut el = EdgeList::new();
        el.push_weighted(0, 1, 0.5);
        el.push_weighted(1, 2, 2.5);
        let g = CsrGraph::from_edge_list(&el);
        assert!(g.is_weighted());
        assert_eq!(g.out_weights(0).unwrap(), &[0.5]);
        assert_eq!(g.out_weights(1).unwrap(), &[2.5]);
        assert!(g.out_weights(2).unwrap().is_empty());
    }

    #[test]
    fn unweighted_graph_has_no_weight_storage() {
        let g = diamond();
        assert!(g.out_weights(0).is_none());
    }

    #[test]
    fn edges_iterator_yields_all_edges() {
        let g = diamond();
        let mut pairs: Vec<_> = g.edges().map(|(s, d, _)| (s, d)).collect();
        pairs.sort();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn roundtrip_through_edge_list() {
        let g = diamond();
        let el = g.to_edge_list();
        let g2 = CsrGraph::from_edge_list(&el);
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.vertices() {
            let mut a = g.out_neighbors(v).to_vec();
            let mut b = g2.out_neighbors(v).to_vec();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn vertices_by_out_degree_desc_orders_hubs_first() {
        let el: EdgeList = [(0u32, 1u32), (0, 2), (0, 3), (1, 2)].into_iter().collect();
        let g = CsrGraph::from_edge_list(&el);
        let order = g.vertices_by_out_degree_desc();
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 1);
    }

    #[test]
    fn empty_graph_is_well_formed() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let mut el = EdgeList::new();
        el.push(0, 1);
        el.ensure_vertices(5);
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.out_degree(4), 0);
        assert_eq!(g.in_degree(4), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        CsrGraph::from_edges(2, &[Edge::new(0, 5)]);
    }

    #[test]
    fn size_bytes_is_positive_for_nonempty_graph() {
        let g = diamond();
        assert!(g.size_bytes() > 0);
    }

    #[test]
    fn parallel_edges_are_preserved() {
        let mut el = EdgeList::new();
        el.push(0, 1);
        el.push(0, 1);
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 2);
    }
}
