//! Plain-text edge-list input/output.
//!
//! The real datasets the paper uses (SNAP LiveJournal, Wikipedia link dumps,
//! UbiCrawler UK-2002, the Twitter follower graph) are all distributed as
//! whitespace-separated edge lists with `#` comment lines. This module reads
//! and writes that format so users of the library can run the PREDIcT
//! pipeline on the original datasets if they have them locally, and so
//! experiment outputs can be re-imported.

use crate::csr::CsrGraph;
use crate::edge_list::EdgeList;
use crate::types::VertexId;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced by the edge-list reader.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed as an edge. Carries the 1-based line number
    /// and the offending content.
    Parse { line: usize, content: String },
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "I/O error: {e}"),
            GraphIoError::Parse { line, content } => {
                write!(f, "cannot parse edge on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphIoError::Io(e) => Some(e),
            GraphIoError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for GraphIoError {
    fn from(e: io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

/// Reads an edge list from a reader. Lines starting with `#` or `%` and blank
/// lines are skipped. Each remaining line must contain two vertex ids and an
/// optional weight, separated by whitespace (spaces or tabs).
pub fn read_edge_list<R: Read>(reader: R) -> Result<EdgeList, GraphIoError> {
    let buf = BufReader::new(reader);
    let mut edges = EdgeList::new();
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_err = || GraphIoError::Parse {
            line: idx + 1,
            content: trimmed.to_string(),
        };
        let src: VertexId = parts
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let dst: VertexId = parts
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        match parts.next() {
            Some(w) => {
                let weight: f32 = w.parse().map_err(|_| parse_err())?;
                edges.push_weighted(src, dst, weight);
            }
            None => edges.push(src, dst),
        }
    }
    Ok(edges)
}

/// Reads an edge list from a file path and freezes it into a [`CsrGraph`].
pub fn read_graph_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphIoError> {
    let file = File::open(path)?;
    let edges = read_edge_list(file)?;
    Ok(CsrGraph::from_edge_list(&edges))
}

/// Writes a graph as a whitespace-separated edge list. Weights are written as
/// a third column only for weighted graphs.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, writer: W) -> Result<(), GraphIoError> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "# vertices: {}", graph.num_vertices())?;
    writeln!(out, "# edges: {}", graph.num_edges())?;
    let weighted = graph.is_weighted();
    for (s, d, w) in graph.edges() {
        if weighted {
            writeln!(out, "{s}\t{d}\t{w}")?;
        } else {
            writeln!(out, "{s}\t{d}")?;
        }
    }
    out.flush()?;
    Ok(())
}

/// Writes a graph to a file path in edge-list format.
pub fn write_graph_file<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<(), GraphIoError> {
    let file = File::create(path)?;
    write_edge_list(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_simple_edge_list() {
        let text = "# comment\n0 1\n1 2\n\n2 0\n";
        let el = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(el.num_edges(), 3);
        assert_eq!(el.num_vertices(), 3);
    }

    #[test]
    fn reads_tab_separated_and_percent_comments() {
        let text = "% header\n0\t5\n5\t7\n";
        let el = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(el.num_edges(), 2);
        assert_eq!(el.num_vertices(), 8);
    }

    #[test]
    fn reads_weighted_edges() {
        let text = "0 1 2.5\n1 2 0.5\n";
        let el = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(el.edges()[0].weight, 2.5);
        assert_eq!(el.edges()[1].weight, 0.5);
    }

    #[test]
    fn reports_parse_error_with_line_number() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            GraphIoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn reports_missing_destination() {
        let text = "42\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphIoError::Parse { line: 1, .. }));
    }

    #[test]
    fn roundtrip_unweighted() {
        let el: EdgeList = [(0u32, 1u32), (1, 2), (2, 0)].into_iter().collect();
        let g = CsrGraph::from_edge_list(&el);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let el2 = read_edge_list(buf.as_slice()).unwrap();
        let g2 = CsrGraph::from_edge_list(&el2);
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.num_vertices(), g.num_vertices());
    }

    #[test]
    fn roundtrip_weighted() {
        let mut el = EdgeList::new();
        el.push_weighted(0, 1, 0.25);
        el.push_weighted(1, 2, 4.0);
        let g = CsrGraph::from_edge_list(&el);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = CsrGraph::from_edge_list(&read_edge_list(buf.as_slice()).unwrap());
        assert!(g2.is_weighted());
        assert_eq!(g2.out_weights(0).unwrap(), &[0.25]);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("predict_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let el: EdgeList = [(0u32, 1u32), (1, 2)].into_iter().collect();
        let g = CsrGraph::from_edge_list(&el);
        write_graph_file(&g, &path).unwrap();
        let g2 = read_graph_file(&path).unwrap();
        assert_eq!(g2.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_graph_file("/nonexistent/definitely/not/here.txt").unwrap_err();
        assert!(matches!(err, GraphIoError::Io(_)));
        // Display and Error::source are wired up.
        assert!(err.to_string().contains("I/O error"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
