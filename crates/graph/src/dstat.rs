//! Kolmogorov–Smirnov D-statistic comparison between a sample graph and the
//! graph it was drawn from.
//!
//! Leskovec & Faloutsos ("Sampling from Large Graphs", KDD 2006 — reference
//! \[23\] of the paper) evaluate sampling techniques by the D-statistic between
//! the property distributions of the sample and the full graph: the smaller
//! the statistic, the better the sample preserves the property. The paper
//! selects Random Jump (and derives Biased Random Jump) based on those scores.
//! This module reproduces that evaluation apparatus so sampler quality can be
//! quantified in tests and in the Figure 9 sensitivity experiment.

use crate::csr::CsrGraph;
use crate::properties::{in_degree_histogram, out_degree_histogram};

/// D-statistic scores comparing a sample graph against its parent graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DStatReport {
    /// D-statistic over the out-degree distributions.
    pub out_degree: f64,
    /// D-statistic over the in-degree distributions.
    pub in_degree: f64,
    /// Ratio of the sample's average degree to the parent's average degree
    /// (1.0 means density is preserved exactly).
    pub density_ratio: f64,
}

impl DStatReport {
    /// Compares `sample` against `full` on degree distributions and density.
    pub fn compare(full: &CsrGraph, sample: &CsrGraph) -> Self {
        let out_degree = ks_statistic_from_histograms(
            &out_degree_histogram(full),
            &out_degree_histogram(sample),
        );
        let in_degree =
            ks_statistic_from_histograms(&in_degree_histogram(full), &in_degree_histogram(sample));
        let density_ratio = if full.avg_degree() == 0.0 {
            1.0
        } else {
            sample.avg_degree() / full.avg_degree()
        };
        Self {
            out_degree,
            in_degree,
            density_ratio,
        }
    }

    /// Mean of the two degree D-statistics — the single-number score used to
    /// rank sampling techniques.
    pub fn mean_degree_dstat(&self) -> f64 {
        (self.out_degree + self.in_degree) / 2.0
    }
}

/// Kolmogorov–Smirnov statistic between two empirical distributions given as
/// value histograms (`hist[v]` = number of observations equal to `v`).
///
/// Returns a value in `[0, 1]`; 0 means identical distributions. Empty
/// histograms compare as distance 1 against non-empty ones and 0 against each
/// other.
pub fn ks_statistic_from_histograms(a: &[usize], b: &[usize]) -> f64 {
    let total_a: usize = a.iter().sum();
    let total_b: usize = b.iter().sum();
    match (total_a, total_b) {
        (0, 0) => return 0.0,
        (0, _) | (_, 0) => return 1.0,
        _ => {}
    }
    let len = a.len().max(b.len());
    let mut cdf_a = 0.0f64;
    let mut cdf_b = 0.0f64;
    let mut d: f64 = 0.0;
    for i in 0..len {
        cdf_a += *a.get(i).unwrap_or(&0) as f64 / total_a as f64;
        cdf_b += *b.get(i).unwrap_or(&0) as f64 / total_b as f64;
        d = d.max((cdf_a - cdf_b).abs());
    }
    d
}

/// Kolmogorov–Smirnov statistic between two samples of real values.
///
/// Used for distributions that are not integer valued (e.g. per-vertex
/// PageRank values when validating that a sample preserves relative ordering).
pub fn ks_statistic_from_samples(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).unwrap());
    sb.sort_by(|x, y| x.partial_cmp(y).unwrap());

    let (mut i, mut j) = (0usize, 0usize);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        // Advance past ties on both sides together so identical samples
        // compare as distance zero.
        if sa[i] < sb[j] {
            i += 1;
        } else if sb[j] < sa[i] {
            j += 1;
        } else {
            let v = sa[i];
            while i < sa.len() && sa[i] == v {
                i += 1;
            }
            while j < sb.len() && sb[j] == v {
                j += 1;
            }
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_erdos_renyi, generate_rmat, ErdosRenyiConfig, RmatConfig};

    #[test]
    fn identical_histograms_have_zero_distance() {
        let h = vec![0, 5, 3, 2];
        assert_eq!(ks_statistic_from_histograms(&h, &h), 0.0);
    }

    #[test]
    fn disjoint_histograms_have_distance_one() {
        let a = vec![10, 0, 0];
        let b = vec![0, 0, 10];
        assert!((ks_statistic_from_histograms(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histograms() {
        assert_eq!(ks_statistic_from_histograms(&[], &[]), 0.0);
        assert_eq!(ks_statistic_from_histograms(&[1, 2], &[]), 1.0);
    }

    #[test]
    fn histogram_distance_is_symmetric() {
        let a = vec![1, 4, 2, 0, 1];
        let b = vec![0, 2, 2, 3];
        let d1 = ks_statistic_from_histograms(&a, &b);
        let d2 = ks_statistic_from_histograms(&b, &a);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn sample_distance_zero_for_identical_samples() {
        let s = vec![0.1, 0.5, 0.9, 1.3];
        assert!(ks_statistic_from_samples(&s, &s) < 1e-12);
    }

    #[test]
    fn sample_distance_detects_shift() {
        let a: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let b: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0 + 0.5).collect();
        let d = ks_statistic_from_samples(&a, &b);
        assert!(
            d > 0.45,
            "shifted uniform distributions should have large D, got {d}"
        );
    }

    #[test]
    fn similar_graphs_have_smaller_dstat_than_dissimilar_ones() {
        let full = generate_rmat(&RmatConfig::new(11, 8).with_seed(1));
        // A smaller R-MAT with the same skew is "similar"; an ER graph is not.
        let similar = generate_rmat(&RmatConfig::new(9, 8).with_seed(2));
        let dissimilar = generate_erdos_renyi(&ErdosRenyiConfig::new(512, 4096).with_seed(2));
        let d_sim = DStatReport::compare(&full, &similar).mean_degree_dstat();
        let d_dis = DStatReport::compare(&full, &dissimilar).mean_degree_dstat();
        assert!(
            d_sim < d_dis,
            "similar graph D-stat {d_sim} should be below dissimilar {d_dis}"
        );
    }

    #[test]
    fn density_ratio_reflects_relative_density() {
        let full = generate_rmat(&RmatConfig::new(10, 8).with_seed(3));
        let sparse = generate_rmat(&RmatConfig::new(10, 2).with_seed(3));
        let report = DStatReport::compare(&full, &sparse);
        assert!(report.density_ratio < 0.6);
    }
}
