//! Property-based tests for the CSR graph representation and the induced
//! subgraph extraction — the invariants every other crate relies on.

use predict_graph::{
    induced_subgraph, shard_csr, shard_edge_list, CsrGraph, Edge, EdgeList, ShardedCsr, VertexId,
};
use proptest::prelude::*;

/// Strategy: an arbitrary edge list over up to `max_vertices` vertices.
fn edge_list(max_vertices: u32, max_edges: usize) -> impl Strategy<Value = EdgeList> {
    prop::collection::vec((0..max_vertices, 0..max_vertices), 0..max_edges).prop_map(|pairs| {
        let mut el = EdgeList::new();
        for (s, d) in pairs {
            el.push(s, d);
        }
        el
    })
}

/// Case count for this suite: the local default, bounded by `PROPTEST_CASES`
/// when set (CI sets it so the property suites finish in seconds).
///
/// Kept at the call site (not only in the vendored proptest) because the real
/// registry `proptest` ignores `PROPTEST_CASES` once `with_cases` is used;
/// this keeps the CI bound working if the workspace swaps back to it.
fn suite_cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .map_or(default_cases, |env| default_cases.min(env))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(suite_cases(64)))]

    /// The CSR construction preserves every edge: out-degrees sum to the edge
    /// count, in-degrees sum to the edge count, and each edge appears in both
    /// the out-adjacency of its source and the in-adjacency of its target.
    #[test]
    fn csr_preserves_all_edges(el in edge_list(64, 256)) {
        let g = CsrGraph::from_edge_list(&el);
        prop_assert_eq!(g.num_edges(), el.num_edges());
        let out_sum: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());

        for e in el.edges() {
            prop_assert!(g.out_neighbors(e.src).contains(&e.dst));
            prop_assert!(g.in_neighbors(e.dst).contains(&e.src));
        }
    }

    /// Converting a CSR graph back to an edge list and rebuilding yields the
    /// same adjacency (up to neighbor order).
    #[test]
    fn csr_roundtrips_through_edge_list(el in edge_list(48, 200)) {
        let g = CsrGraph::from_edge_list(&el);
        let g2 = CsrGraph::from_edge_list(&g.to_edge_list());
        prop_assert_eq!(g.num_vertices(), g2.num_vertices());
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        for v in g.vertices() {
            let mut a = g.out_neighbors(v).to_vec();
            let mut b = g2.out_neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    /// The undirected conversion is symmetric: u is an out-neighbor of v iff
    /// v is an out-neighbor of u, and no self loops survive.
    #[test]
    fn undirected_conversion_is_symmetric(el in edge_list(40, 150)) {
        let und = CsrGraph::from_edge_list(&el.to_undirected());
        for v in und.vertices() {
            prop_assert!(!und.out_neighbors(v).contains(&v));
            for &u in und.out_neighbors(v) {
                prop_assert!(und.out_neighbors(u).contains(&v), "missing reverse edge {u}->{v}");
            }
        }
    }

    /// An induced subgraph never contains edges that were absent from the
    /// parent graph, and its edge count is bounded by the parent's.
    #[test]
    fn induced_subgraph_is_a_subgraph(
        el in edge_list(48, 200),
        selector in prop::collection::vec(any::<bool>(), 48),
    ) {
        let g = CsrGraph::from_edge_list(&el);
        let selected: Vec<VertexId> = g
            .vertices()
            .filter(|&v| selector.get(v as usize).copied().unwrap_or(false))
            .collect();
        let (sub, mapping) = induced_subgraph(&g, &selected);
        prop_assert!(sub.num_vertices() <= g.num_vertices());
        prop_assert!(sub.num_edges() <= g.num_edges());
        for (s, d, _) in sub.edges() {
            let orig_s = mapping.original_id(s);
            let orig_d = mapping.original_id(d);
            prop_assert!(g.out_neighbors(orig_s).contains(&orig_d));
        }
    }

    /// Weighted edges keep their weights through CSR construction.
    #[test]
    fn weights_are_preserved(
        pairs in prop::collection::vec((0u32..32, 0u32..32, 0.1f32..10.0), 1..100),
    ) {
        let mut el = EdgeList::new();
        for &(s, d, w) in &pairs {
            el.push_edge(Edge::weighted(s, d, w));
        }
        let g = CsrGraph::from_edge_list(&el);
        let total_weight: f64 = g.edges().map(|(_, _, w)| w as f64).sum();
        let expected: f64 = pairs.iter().map(|&(_, _, w)| w as f64).sum();
        prop_assert!((total_weight - expected).abs() < 1e-3);
    }

    /// The counting-sort CSR build equals a naive per-vertex reference build
    /// edge for edge — same neighbor order, same in-adjacency order, same
    /// weights — on random edge lists with duplicates and self-loops.
    #[test]
    fn counting_csr_matches_reference_adjacency(
        triples in prop::collection::vec((0u32..48, 0u32..48, 1.0f32..4.0), 0..250),
        weighted in any::<bool>(),
    ) {
        let n = 48usize;
        let mut el = EdgeList::new();
        el.ensure_vertices(n);
        // `weighted == false` exercises the unweighted storage path too.
        for &(s, d, w) in &triples {
            el.push_edge(Edge::weighted(s, d, if weighted { w } else { 1.0 }));
        }
        let g = CsrGraph::from_edge_list(&el);

        // Reference: adjacency assembled by per-vertex pushes in edge order.
        let mut out_ref: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
        let mut in_ref: Vec<Vec<u32>> = vec![Vec::new(); n];
        for e in el.edges() {
            out_ref[e.src as usize].push((e.dst, e.weight));
            in_ref[e.dst as usize].push(e.src);
        }
        for v in g.vertices() {
            let expected_out: Vec<u32> = out_ref[v as usize].iter().map(|&(d, _)| d).collect();
            prop_assert_eq!(g.out_neighbors(v), expected_out.as_slice());
            prop_assert_eq!(g.in_neighbors(v), in_ref[v as usize].as_slice());
            if let Some(ws) = g.out_weights(v) {
                let expected_w: Vec<f32> = out_ref[v as usize].iter().map(|&(_, w)| w).collect();
                prop_assert_eq!(ws, expected_w.as_slice());
            }
        }
    }

    /// The radix-sort `EdgeList::dedup` equals the sort-based reference it
    /// replaced (stable `sort_by_key` + keep-first `dedup_by_key`) on random
    /// lists with duplicates and self-loops, including which weight survives.
    #[test]
    fn radix_dedup_matches_sort_based_reference(
        triples in prop::collection::vec((0u32..24, 0u32..24, 0.5f32..8.0), 0..300),
        extra_vertices in 0usize..64,
    ) {
        let mut el = EdgeList::new();
        for &(s, d, w) in &triples {
            el.push_edge(Edge::weighted(s, d, w));
        }
        // A large ensured id space exercises the comparison-sort fallback.
        el.ensure_vertices(el.num_vertices() + extra_vertices);
        let mut reference: Vec<Edge> = el.edges().to_vec();
        reference.sort_by_key(|e| (e.src, e.dst));
        reference.dedup_by_key(|e| (e.src, e.dst));

        el.dedup();
        prop_assert_eq!(el.num_edges(), reference.len());
        for (a, b) in el.edges().iter().zip(&reference) {
            prop_assert_eq!((a.src, a.dst), (b.src, b.dst));
            prop_assert_eq!(a.weight, b.weight, "surviving weight differs for ({}, {})", a.src, a.dst);
        }
    }

    /// The direct induced-subgraph CSR assembly equals the edge-list
    /// reference path byte for byte: same neighbor order, same in-adjacency,
    /// same weight storage decision.
    #[test]
    fn induced_subgraph_matches_edge_list_reference(
        triples in prop::collection::vec((0u32..40, 0u32..40, 1.0f32..4.0), 0..220),
        selector in prop::collection::vec(any::<bool>(), 40),
        weighted in any::<bool>(),
    ) {
        let mut el = EdgeList::new();
        el.ensure_vertices(40);
        for &(s, d, w) in &triples {
            el.push_edge(Edge::weighted(s, d, if weighted { w } else { 1.0 }));
        }
        let g = CsrGraph::from_edge_list(&el);
        let selected: Vec<VertexId> = g
            .vertices()
            .filter(|&v| selector[v as usize])
            .collect();
        let (sub, mapping) = induced_subgraph(&g, &selected);

        // Reference: the pre-optimization implementation — push surviving
        // edges into an EdgeList and freeze it.
        let mut ref_edges = EdgeList::new();
        ref_edges.ensure_vertices(selected.len());
        for (new_src, orig_src) in mapping.iter() {
            let nbrs = g.out_neighbors(orig_src);
            let ws = g.out_weights(orig_src);
            for (i, &orig_dst) in nbrs.iter().enumerate() {
                if let Some(new_dst) = mapping.sample_id(orig_dst) {
                    let w = ws.map(|w| w[i]).unwrap_or(1.0);
                    ref_edges.push_weighted(new_src, new_dst, w);
                }
            }
        }
        let reference = CsrGraph::from_edge_list(&ref_edges);

        prop_assert_eq!(sub.num_vertices(), reference.num_vertices());
        prop_assert_eq!(sub.num_edges(), reference.num_edges());
        prop_assert_eq!(sub.is_weighted(), reference.is_weighted());
        for v in sub.vertices() {
            prop_assert_eq!(sub.out_neighbors(v), reference.out_neighbors(v));
            prop_assert_eq!(sub.in_neighbors(v), reference.in_neighbors(v));
            prop_assert_eq!(sub.out_weights(v), reference.out_weights(v));
        }
    }

    /// The adaptive dedup (presortedness probe -> comparison sort on
    /// nearly-sorted streams, radix otherwise) equals the stable-sort
    /// reference on *nearly-sorted* inputs: a sorted-with-duplicates stream
    /// perturbed by a bounded number of random swaps, the shape the probe
    /// routes to the comparison path.
    #[test]
    fn adaptive_dedup_on_nearly_sorted_streams_matches_reference(
        base in prop::collection::vec((0u32..32, 0u32..32, 0.5f32..8.0), 1..250),
        swaps in prop::collection::vec((0usize..250, 0usize..250), 0..6),
    ) {
        let mut edges: Vec<Edge> = base
            .iter()
            .map(|&(s, d, w)| Edge::weighted(s, d, w))
            .collect();
        // Sort first (keeping first-occurrence order for equal keys), then
        // displace a few edges: a nearly-sorted stream with duplicates.
        edges.sort_by_key(|e| (e.src, e.dst));
        let len = edges.len();
        for &(i, j) in &swaps {
            edges.swap(i % len, j % len);
        }
        let mut el = EdgeList::new();
        for &e in &edges {
            el.push_edge(e);
        }
        let mut reference = edges.clone();
        reference.sort_by_key(|e| (e.src, e.dst));
        reference.dedup_by_key(|e| (e.src, e.dst));

        el.dedup();
        prop_assert_eq!(el.num_edges(), reference.len());
        for (a, b) in el.edges().iter().zip(&reference) {
            prop_assert_eq!((a.src, a.dst, a.weight), (b.src, b.dst, b.weight));
        }
    }

    /// Sharding is a pure re-layout: for any (possibly weighted) edge list,
    /// worker count and modulo ownership, every shard's per-slot adjacency
    /// and weights equal the unified CSR's for the owned vertex, cut lists
    /// point exactly at the cross-shard edges, and shard totals partition
    /// the graph. Covers empty worker ranges (more workers than vertices)
    /// and cross-shard weighted edges by construction.
    #[test]
    fn sharded_csr_matches_unified_reference(
        pairs in prop::collection::vec((0u32..40, 0u32..40, 0.5f32..4.0), 0..160),
        workers in 1usize..9,
        weighted in any::<bool>(),
    ) {
        let mut el = EdgeList::new();
        for (s, d, w) in pairs {
            el.push_edge(Edge::weighted(s, d, if weighted { w } else { 1.0 }));
        }
        let g = CsrGraph::from_edge_list(&el);
        let owner = |v: VertexId| v as usize % workers;
        let shards = shard_edge_list(&el, workers, owner);

        prop_assert_eq!(shards.len(), workers);
        let vertex_total: usize = shards.iter().map(ShardedCsr::num_local_vertices).sum();
        let edge_total: usize = shards.iter().map(ShardedCsr::num_local_edges).sum();
        prop_assert_eq!(vertex_total, g.num_vertices());
        prop_assert_eq!(edge_total, g.num_edges());

        for shard in &shards {
            prop_assert_eq!(shard.is_weighted(), g.is_weighted());
            for (slot, &v) in shard.owned().iter().enumerate() {
                prop_assert_eq!(owner(v), shard.worker());
                prop_assert_eq!(shard.out_neighbors_at(slot), g.out_neighbors(v));
                prop_assert_eq!(shard.out_weights_at(slot), g.out_weights(v));
            }
            // Cut lists: every listed edge crosses to exactly that peer, and
            // local + remote accounts for every local edge.
            let mut remote = 0usize;
            for peer in 0..workers {
                for &_idx in shard.cut_to(peer) {
                    prop_assert!(peer != shard.worker());
                }
                remote += shard.cut_to(peer).len();
            }
            prop_assert_eq!(shard.remote_edges(), remote);
            prop_assert_eq!(shard.local_edges() + remote, shard.num_local_edges());
            // Every slot's neighbors that live elsewhere appear in a cut.
            let cut_total: usize = (0..shard.num_local_vertices())
                .map(|slot| {
                    shard
                        .out_neighbors_at(slot)
                        .iter()
                        .filter(|&&d| owner(d) != shard.worker())
                        .count()
                })
                .sum();
            prop_assert_eq!(cut_total, remote);
        }

        // Sharding the frozen CSR produces the same shards.
        let from_csr = shard_csr(&g, workers, owner);
        for (a, b) in shards.iter().zip(&from_csr) {
            prop_assert_eq!(a.owned(), b.owned());
            for slot in 0..a.num_local_vertices() {
                prop_assert_eq!(a.out_neighbors_at(slot), b.out_neighbors_at(slot));
                prop_assert_eq!(a.out_weights_at(slot), b.out_weights_at(slot));
            }
        }
    }

    /// The cached counting-bucket degree ordering equals a stable
    /// comparison-sort reference: descending out-degree, ties in ascending
    /// vertex order.
    #[test]
    fn degree_order_matches_stable_sort(el in edge_list(56, 300)) {
        let g = CsrGraph::from_edge_list(&el);
        let mut reference: Vec<VertexId> = g.vertices().collect();
        reference.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v)));
        prop_assert_eq!(g.vertices_by_out_degree_desc(), reference.as_slice());
        // The cache returns the identical ordering on re-query.
        prop_assert_eq!(g.vertices_by_out_degree_desc(), reference.as_slice());
    }
}
