//! Property-based tests for the CSR graph representation and the induced
//! subgraph extraction — the invariants every other crate relies on.

use predict_graph::{induced_subgraph, CsrGraph, Edge, EdgeList, VertexId};
use proptest::prelude::*;

/// Strategy: an arbitrary edge list over up to `max_vertices` vertices.
fn edge_list(max_vertices: u32, max_edges: usize) -> impl Strategy<Value = EdgeList> {
    prop::collection::vec((0..max_vertices, 0..max_vertices), 0..max_edges).prop_map(|pairs| {
        let mut el = EdgeList::new();
        for (s, d) in pairs {
            el.push(s, d);
        }
        el
    })
}

/// Case count for this suite: the local default, bounded by `PROPTEST_CASES`
/// when set (CI sets it so the property suites finish in seconds).
///
/// Kept at the call site (not only in the vendored proptest) because the real
/// registry `proptest` ignores `PROPTEST_CASES` once `with_cases` is used;
/// this keeps the CI bound working if the workspace swaps back to it.
fn suite_cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .map_or(default_cases, |env| default_cases.min(env))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(suite_cases(64)))]

    /// The CSR construction preserves every edge: out-degrees sum to the edge
    /// count, in-degrees sum to the edge count, and each edge appears in both
    /// the out-adjacency of its source and the in-adjacency of its target.
    #[test]
    fn csr_preserves_all_edges(el in edge_list(64, 256)) {
        let g = CsrGraph::from_edge_list(&el);
        prop_assert_eq!(g.num_edges(), el.num_edges());
        let out_sum: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());

        for e in el.edges() {
            prop_assert!(g.out_neighbors(e.src).contains(&e.dst));
            prop_assert!(g.in_neighbors(e.dst).contains(&e.src));
        }
    }

    /// Converting a CSR graph back to an edge list and rebuilding yields the
    /// same adjacency (up to neighbor order).
    #[test]
    fn csr_roundtrips_through_edge_list(el in edge_list(48, 200)) {
        let g = CsrGraph::from_edge_list(&el);
        let g2 = CsrGraph::from_edge_list(&g.to_edge_list());
        prop_assert_eq!(g.num_vertices(), g2.num_vertices());
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        for v in g.vertices() {
            let mut a = g.out_neighbors(v).to_vec();
            let mut b = g2.out_neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    /// The undirected conversion is symmetric: u is an out-neighbor of v iff
    /// v is an out-neighbor of u, and no self loops survive.
    #[test]
    fn undirected_conversion_is_symmetric(el in edge_list(40, 150)) {
        let und = CsrGraph::from_edge_list(&el.to_undirected());
        for v in und.vertices() {
            prop_assert!(!und.out_neighbors(v).contains(&v));
            for &u in und.out_neighbors(v) {
                prop_assert!(und.out_neighbors(u).contains(&v), "missing reverse edge {u}->{v}");
            }
        }
    }

    /// An induced subgraph never contains edges that were absent from the
    /// parent graph, and its edge count is bounded by the parent's.
    #[test]
    fn induced_subgraph_is_a_subgraph(
        el in edge_list(48, 200),
        selector in prop::collection::vec(any::<bool>(), 48),
    ) {
        let g = CsrGraph::from_edge_list(&el);
        let selected: Vec<VertexId> = g
            .vertices()
            .filter(|&v| selector.get(v as usize).copied().unwrap_or(false))
            .collect();
        let (sub, mapping) = induced_subgraph(&g, &selected);
        prop_assert!(sub.num_vertices() <= g.num_vertices());
        prop_assert!(sub.num_edges() <= g.num_edges());
        for (s, d, _) in sub.edges() {
            let orig_s = mapping.original_id(s);
            let orig_d = mapping.original_id(d);
            prop_assert!(g.out_neighbors(orig_s).contains(&orig_d));
        }
    }

    /// Weighted edges keep their weights through CSR construction.
    #[test]
    fn weights_are_preserved(
        pairs in prop::collection::vec((0u32..32, 0u32..32, 0.1f32..10.0), 1..100),
    ) {
        let mut el = EdgeList::new();
        for &(s, d, w) in &pairs {
            el.push_edge(Edge::weighted(s, d, w));
        }
        let g = CsrGraph::from_edge_list(&el);
        let total_weight: f64 = g.edges().map(|(_, _, w)| w as f64).sum();
        let expected: f64 = pairs.iter().map(|&(_, _, w)| w as f64).sum();
        prop_assert!((total_weight - expected).abs() < 1e-3);
    }
}
