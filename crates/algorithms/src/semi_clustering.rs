//! Semi-clustering — variable message *sizes* per iteration (§4.2).
//!
//! Semi-clustering (Malewicz et al., the Pregel paper) finds groups of
//! vertices that interact strongly with each other; a vertex may belong to
//! several semi-clusters. Every vertex maintains its `C_max` best
//! semi-clusters and, each iteration, forwards its `S_max` best ones to its
//! neighbors; receiving vertices extend those clusters with themselves when
//! allowed. Messages therefore carry whole cluster lists whose size grows
//! over the first iterations — the paper's category ii).a) of runtime
//! variability (different message sizes across iterations).
//!
//! Convergence uses the paper's practical, size-invariant condition: the run
//! stops when the fraction of semi-clusters that were updated during the
//! iteration drops below `τ`.

use predict_bsp::{Aggregates, BspEngine, ComputeContext, InitContext, VertexProgram};
use predict_graph::{CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Aggregator counting semi-cluster updates performed in a superstep.
pub const UPDATED_CLUSTERS_AGGREGATOR: &str = "semicluster/updated";
/// Aggregator counting the total number of semi-clusters held by all vertices.
pub const TOTAL_CLUSTERS_AGGREGATOR: &str = "semicluster/total";

/// Parameters of the semi-clustering algorithm. Field names follow the paper:
/// `C_max`, `S_max`, `V_max`, `f_B`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SemiClusteringParams {
    /// Maximum number of semi-clusters each vertex retains (`C_max`).
    pub c_max: usize,
    /// Maximum number of semi-clusters each vertex forwards to its neighbors
    /// per iteration (`S_max`).
    pub s_max: usize,
    /// Maximum number of vertices in a semi-cluster (`V_max`).
    pub v_max: usize,
    /// Boundary edge factor `f_B` penalizing edges that leave the cluster
    /// (`0 < f_B < 1`).
    pub boundary_factor: f64,
    /// Convergence threshold on the ratio of updated semi-clusters.
    pub tolerance: f64,
}

impl Default for SemiClusteringParams {
    /// The paper's base settings (section 5.1): `C_max = 1`, `S_max = 1`,
    /// `V_max = 10`, `f_B = 0.1`, `τ = 0.001`.
    fn default() -> Self {
        Self {
            c_max: 1,
            s_max: 1,
            v_max: 10,
            boundary_factor: 0.1,
            tolerance: 0.001,
        }
    }
}

impl SemiClusteringParams {
    /// Creates a parameter set.
    pub fn new(
        c_max: usize,
        s_max: usize,
        v_max: usize,
        boundary_factor: f64,
        tolerance: f64,
    ) -> Self {
        assert!(
            c_max > 0 && s_max > 0 && v_max > 1,
            "cluster capacity parameters must be positive"
        );
        assert!(
            boundary_factor > 0.0 && boundary_factor < 1.0,
            "boundary factor must be in (0, 1), got {boundary_factor}"
        );
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        Self {
            c_max,
            s_max,
            v_max,
            boundary_factor,
            tolerance,
        }
    }

    /// Returns a copy with a different convergence threshold.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }
}

/// A semi-cluster: a set of vertices with its accumulated internal and
/// boundary edge weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemiCluster {
    /// Vertices in the cluster, kept sorted for cheap membership tests and
    /// deterministic comparison.
    pub vertices: Vec<VertexId>,
    /// Sum of the weights of edges with both endpoints inside the cluster
    /// (`I_c`).
    pub internal_weight: f64,
    /// Sum of the weights of edges with exactly one endpoint inside the
    /// cluster (`B_c`).
    pub boundary_weight: f64,
}

impl SemiCluster {
    /// A singleton cluster containing only `vertex`, whose incident edge
    /// weight is all boundary weight.
    pub fn singleton(vertex: VertexId, incident_weight: f64) -> Self {
        Self {
            vertices: vec![vertex],
            internal_weight: 0.0,
            boundary_weight: incident_weight,
        }
    }

    /// True when the cluster contains `vertex`.
    pub fn contains(&self, vertex: VertexId) -> bool {
        self.vertices.binary_search(&vertex).is_ok()
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the cluster has no members (never produced by the algorithm,
    /// but required for a complete API).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The paper's score (equation 2): `(I_c - f_B * B_c) / (V_c (V_c - 1) / 2)`,
    /// normalizing by the number of edges a clique over the members would
    /// have. Singleton clusters score 0 by convention (as in Pregel).
    pub fn score(&self, boundary_factor: f64) -> f64 {
        let vc = self.vertices.len() as f64;
        if vc < 2.0 {
            return 0.0;
        }
        (self.internal_weight - boundary_factor * self.boundary_weight) / (vc * (vc - 1.0) / 2.0)
    }

    /// Extends the cluster with `vertex`, whose incident edges are described
    /// by `(neighbor, weight)` pairs. Edges towards existing members move
    /// from boundary to internal weight; edges towards non-members add
    /// boundary weight.
    pub fn extended_with(&self, vertex: VertexId, incident: &[(VertexId, f32)]) -> Self {
        let mut extended = self.clone();
        let mut to_members = 0.0f64;
        let mut to_outside = 0.0f64;
        for &(nbr, w) in incident {
            if nbr == vertex {
                continue;
            }
            if extended.contains(nbr) {
                to_members += w as f64;
            } else {
                to_outside += w as f64;
            }
        }
        extended.internal_weight += to_members;
        // Edges from existing members to `vertex` previously counted as
        // boundary weight of the cluster; they are now internal.
        extended.boundary_weight = (extended.boundary_weight - to_members).max(0.0) + to_outside;
        extended.vertices.push(vertex);
        extended.vertices.sort_unstable();
        extended
    }

    /// Approximate serialized size in bytes: vertex ids plus the two weights.
    pub fn size_bytes(&self) -> u64 {
        (self.vertices.len() * 4 + 16) as u64
    }
}

/// Per-vertex state: the best `C_max` semi-clusters containing this vertex.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SemiClusterList {
    /// Best clusters containing the vertex, highest score first.
    pub clusters: Vec<SemiCluster>,
}

/// The semi-clustering vertex program.
///
/// The input graph is expected to be undirected (every edge present in both
/// directions), which is how the paper feeds directed graphs to this
/// algorithm; [`crate::workload::SemiClusteringWorkload`] performs the
/// conversion automatically.
#[derive(Debug, Clone, Copy)]
pub struct SemiClustering {
    /// Algorithm parameters.
    pub params: SemiClusteringParams,
}

impl SemiClustering {
    /// Creates a semi-clustering program.
    pub fn new(params: SemiClusteringParams) -> Self {
        Self { params }
    }

    /// Runs the program and returns per-vertex cluster lists plus the profile.
    pub fn run(&self, engine: &BspEngine, graph: &CsrGraph) -> SemiClusteringResult {
        let result = engine.run(graph, self);
        SemiClusteringResult {
            clusters: result.values,
            iterations: result.profile.num_iterations(),
            profile: result.profile,
            halt_reason: result.halt_reason,
        }
    }

    fn incident_edges(
        &self,
        ctx: &ComputeContext<'_, SemiClusterList, Vec<SemiCluster>>,
    ) -> Vec<(VertexId, f32)> {
        let weights = ctx.out_weights;
        ctx.out_neighbors
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, weights.map(|w| w[i]).unwrap_or(1.0)))
            .collect()
    }

    fn sort_by_score(&self, clusters: &mut [SemiCluster]) {
        let f_b = self.params.boundary_factor;
        clusters.sort_by(|a, b| {
            b.score(f_b)
                .partial_cmp(&a.score(f_b))
                .unwrap()
                .then_with(|| a.vertices.cmp(&b.vertices))
        });
    }
}

/// Output of a semi-clustering run.
#[derive(Debug, Clone)]
pub struct SemiClusteringResult {
    /// Final cluster list of every vertex.
    pub clusters: Vec<SemiClusterList>,
    /// Number of supersteps executed.
    pub iterations: usize,
    /// Full run profile.
    pub profile: predict_bsp::RunProfile,
    /// Why the run terminated.
    pub halt_reason: predict_bsp::HaltReason,
}

impl SemiClusteringResult {
    /// The globally best `n` semi-clusters across all vertices, deduplicated,
    /// highest score first (the "global list of best semi-clusters" of the
    /// paper).
    pub fn best_clusters(&self, n: usize, boundary_factor: f64) -> Vec<SemiCluster> {
        let mut all: Vec<SemiCluster> = self
            .clusters
            .iter()
            .flat_map(|l| l.clusters.iter().cloned())
            .collect();
        all.sort_by(|a, b| {
            b.score(boundary_factor)
                .partial_cmp(&a.score(boundary_factor))
                .unwrap()
                .then_with(|| a.vertices.cmp(&b.vertices))
        });
        all.dedup_by(|a, b| a.vertices == b.vertices);
        all.truncate(n);
        all
    }
}

impl VertexProgram for SemiClustering {
    type VertexValue = SemiClusterList;
    type Message = Vec<SemiCluster>;

    fn name(&self) -> &'static str {
        "semi-clustering"
    }

    fn init_vertex(&self, vertex: VertexId, ctx: &InitContext<'_>) -> SemiClusterList {
        let incident: f64 = ctx
            .out_weights
            .map(|ws| ws.iter().map(|&w| w as f64).sum())
            .unwrap_or(ctx.out_degree() as f64);
        SemiClusterList {
            clusters: vec![SemiCluster::singleton(vertex, incident)],
        }
    }

    fn compute(
        &self,
        ctx: &mut ComputeContext<'_, SemiClusterList, Vec<SemiCluster>>,
        messages: &[Vec<SemiCluster>],
    ) {
        if ctx.superstep == 0 {
            // First iteration: every vertex introduces itself as a singleton
            // semi-cluster to all of its neighbors.
            let own = ctx.value.clusters.clone();
            ctx.aggregate(TOTAL_CLUSTERS_AGGREGATOR, own.len() as f64);
            ctx.send_to_all_neighbors(own);
            ctx.vote_to_halt();
            return;
        }

        let vertex = ctx.vertex;
        let incident = self.incident_edges(ctx);

        // Candidate clusters: the ones received plus the extensions formed by
        // adding this vertex where allowed.
        let mut candidates: Vec<SemiCluster> = Vec::new();
        for msg in messages {
            for sc in msg {
                candidates.push(sc.clone());
                if !sc.contains(vertex) && sc.len() < self.params.v_max {
                    candidates.push(sc.extended_with(vertex, &incident));
                }
            }
        }

        // Forward the S_max best candidates to the neighbors.
        self.sort_by_score(&mut candidates);
        candidates.dedup_by(|a, b| a.vertices == b.vertices);
        let forward: Vec<SemiCluster> =
            candidates.iter().take(self.params.s_max).cloned().collect();

        // Update the vertex's own list with the candidates that contain it.
        let mut own: Vec<SemiCluster> = ctx.value.clusters.clone();
        let own_before = own.clone();
        own.extend(candidates.into_iter().filter(|c| c.contains(vertex)));
        self.sort_by_score(&mut own);
        own.dedup_by(|a, b| a.vertices == b.vertices);
        own.truncate(self.params.c_max);

        let updates = own
            .iter()
            .filter(|c| !own_before.iter().any(|o| o.vertices == c.vertices))
            .count();
        ctx.value.clusters = own;

        ctx.aggregate(UPDATED_CLUSTERS_AGGREGATOR, updates as f64);
        ctx.aggregate(TOTAL_CLUSTERS_AGGREGATOR, ctx.value.clusters.len() as f64);

        if !forward.is_empty() {
            ctx.send_to_all_neighbors(forward);
        }
        ctx.vote_to_halt();
    }

    fn message_size_bytes(&self, msg: &Vec<SemiCluster>) -> u64 {
        msg.iter().map(|c| c.size_bytes()).sum()
    }

    fn master_halt(&self, superstep: usize, aggregates: &Aggregates) -> bool {
        if superstep == 0 {
            return false;
        }
        let updated = aggregates.get_or(UPDATED_CLUSTERS_AGGREGATOR, 0.0);
        let total = aggregates.get_or(TOTAL_CLUSTERS_AGGREGATOR, 0.0).max(1.0);
        updated / total < self.params.tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_bsp::{BspConfig, ClusterCostConfig};
    use predict_graph::generators::{generate_rmat, RmatConfig};
    use predict_graph::{EdgeList, GraphBuilder};

    fn engine() -> BspEngine {
        BspEngine::new(BspConfig::with_workers(4).with_cost(ClusterCostConfig::noiseless()))
    }

    fn undirected(graph: &CsrGraph) -> CsrGraph {
        CsrGraph::from_edge_list(&graph.to_edge_list().to_undirected())
    }

    #[test]
    fn singleton_cluster_scores_zero() {
        let sc = SemiCluster::singleton(3, 5.0);
        assert_eq!(sc.score(0.1), 0.0);
        assert!(sc.contains(3));
        assert!(!sc.contains(4));
        assert_eq!(sc.len(), 1);
    }

    #[test]
    fn extending_moves_boundary_weight_to_internal() {
        // Cluster {0} with boundary weight 2 (edges 0-1 and 0-2).
        let sc = SemiCluster::singleton(0, 2.0);
        // Vertex 1's incident edges: to 0 (in cluster, weight 1) and to 2
        // (outside, weight 1).
        let extended = sc.extended_with(1, &[(0, 1.0), (2, 1.0)]);
        assert_eq!(extended.vertices, vec![0, 1]);
        assert!((extended.internal_weight - 1.0).abs() < 1e-12);
        assert!((extended.boundary_weight - 2.0).abs() < 1e-12);
        // Score of a 2-clique with I=1, B=2, f_B=0.1: (1 - 0.2)/1 = 0.8.
        assert!((extended.score(0.1) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn two_triangles_yield_triangle_clusters() {
        // Two triangles {0,1,2} and {3,4,5} joined by a single weak edge 2-3.
        let mut b = GraphBuilder::new().undirected(true);
        for (s, d) in [(0u32, 1u32), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            b.add_edge(s, d);
        }
        let g = b.build();
        let params = SemiClusteringParams::new(2, 2, 3, 0.2, 0.0);
        let result = SemiClustering::new(params).run(&engine(), &g);
        let best = result.best_clusters(2, params.boundary_factor);
        assert_eq!(best.len(), 2);
        for cluster in &best {
            let vs = &cluster.vertices;
            assert!(
                vs == &vec![0, 1, 2] || vs == &vec![3, 4, 5],
                "unexpected best cluster {vs:?}"
            );
            assert!(cluster.score(params.boundary_factor) > 0.0);
        }
    }

    #[test]
    fn cluster_size_never_exceeds_v_max() {
        let g = undirected(&generate_rmat(&RmatConfig::new(7, 4).with_seed(1)));
        let params = SemiClusteringParams {
            v_max: 4,
            ..Default::default()
        };
        let result = SemiClustering::new(params).run(&engine(), &g);
        for list in &result.clusters {
            for c in &list.clusters {
                assert!(c.len() <= 4);
            }
        }
    }

    #[test]
    fn list_size_never_exceeds_c_max() {
        let g = undirected(&generate_rmat(&RmatConfig::new(7, 4).with_seed(2)));
        let params = SemiClusteringParams {
            c_max: 2,
            s_max: 2,
            ..Default::default()
        };
        let result = SemiClustering::new(params).run(&engine(), &g);
        for list in &result.clusters {
            assert!(list.clusters.len() <= 2);
        }
    }

    #[test]
    fn message_bytes_grow_after_first_iteration() {
        // The paper's category ii).a): message sizes vary across iterations
        // because clusters grow. The average message size in iteration 2 must
        // exceed the singleton-sized messages of iteration 0.
        let g = undirected(&generate_rmat(&RmatConfig::new(8, 5).with_seed(3)));
        let result = SemiClustering::new(SemiClusteringParams::default()).run(&engine(), &g);
        let totals = result.profile.per_superstep_totals();
        assert!(totals.len() >= 3);
        assert!(
            totals[2].avg_message_size() > totals[0].avg_message_size(),
            "cluster messages should grow: {} vs {}",
            totals[2].avg_message_size(),
            totals[0].avg_message_size()
        );
    }

    #[test]
    fn converges_with_ratio_threshold() {
        let g = undirected(&generate_rmat(&RmatConfig::new(8, 5).with_seed(4)));
        let result = SemiClustering::new(SemiClusteringParams::default()).run(&engine(), &g);
        assert!(result.iterations >= 2);
        assert!(
            result.iterations < 100,
            "should converge well before the cap"
        );
    }

    #[test]
    fn larger_s_max_sends_more_bytes() {
        let g = undirected(&generate_rmat(&RmatConfig::new(7, 5).with_seed(5)));
        let small = SemiClustering::new(SemiClusteringParams::default()).run(&engine(), &g);
        let large = SemiClustering::new(SemiClusteringParams {
            s_max: 3,
            c_max: 3,
            ..Default::default()
        })
        .run(&engine(), &g);
        let bytes = |r: &SemiClusteringResult| {
            r.profile
                .per_superstep_totals()
                .iter()
                .map(|t| t.total_message_bytes())
                .sum::<u64>()
        };
        assert!(bytes(&large) > bytes(&small));
    }

    #[test]
    fn message_size_sums_cluster_sizes() {
        let sc = SemiClustering::new(SemiClusteringParams::default());
        let c1 = SemiCluster::singleton(1, 1.0);
        let c2 = SemiCluster {
            vertices: vec![1, 2, 3],
            internal_weight: 2.0,
            boundary_weight: 1.0,
        };
        assert_eq!(sc.message_size_bytes(&vec![c1.clone()]), 20);
        assert_eq!(sc.message_size_bytes(&vec![c1, c2]), 20 + 28);
    }

    #[test]
    fn weighted_edges_affect_scores() {
        // Vertex 0 and 1 joined by a heavy edge, 1 and 2 by a light edge.
        let mut el = EdgeList::new();
        el.push_weighted(0, 1, 10.0);
        el.push_weighted(1, 0, 10.0);
        el.push_weighted(1, 2, 0.1);
        el.push_weighted(2, 1, 0.1);
        let g = CsrGraph::from_edge_list(&el);
        let params = SemiClusteringParams::new(1, 1, 2, 0.5, 0.0);
        let result = SemiClustering::new(params).run(&engine(), &g);
        let best = result.best_clusters(1, params.boundary_factor);
        assert_eq!(
            best[0].vertices,
            vec![0, 1],
            "the heavy edge should form the best cluster"
        );
    }

    #[test]
    #[should_panic(expected = "boundary factor")]
    fn invalid_boundary_factor_panics() {
        let _ = SemiClusteringParams::new(1, 1, 10, 1.5, 0.001);
    }
}
