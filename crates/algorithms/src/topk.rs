//! Top-k ranking — variable number of messages per iteration (§4.3).
//!
//! Top-k ranking runs on the *output* of PageRank: every vertex maintains the
//! `k` highest ranks reachable from it. In the first iteration each vertex
//! sends its own rank to its neighbors; in later iterations a vertex merges
//! the rank lists it received, and only if its local top-k list changed does
//! it forward the updated list. Vertices that perform no update send nothing,
//! so both the number of messages and the message byte counts vary wildly
//! between iterations — the paper's category ii).b) of runtime variability.
//!
//! Convergence uses a size-invariant ratio: the run stops when the fraction
//! of vertices that performed an update drops below `τ`.

use predict_bsp::{Aggregates, BspEngine, ComputeContext, InitContext, VertexProgram};
use predict_graph::{CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Aggregator counting vertices that updated their top-k list this superstep.
pub const UPDATED_VERTICES_AGGREGATOR: &str = "topk/updated_vertices";

/// Parameters of top-k ranking.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopKParams {
    /// Number of top ranks each vertex tracks.
    pub k: usize,
    /// Convergence threshold on the ratio of updating vertices
    /// (`activeVertices / totalVertices < τ`).
    pub tolerance: f64,
}

impl Default for TopKParams {
    fn default() -> Self {
        Self {
            k: 5,
            tolerance: 0.001,
        }
    }
}

impl TopKParams {
    /// Creates parameters for tracking the `k` highest reachable ranks with
    /// convergence threshold `tolerance`.
    pub fn new(k: usize, tolerance: f64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        Self { k, tolerance }
    }

    /// Returns a copy with a different convergence threshold.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }
}

/// A `(rank, vertex)` entry of a top-k list.
pub type RankEntry = (f64, VertexId);

/// Per-vertex state: the best `k` ranks seen so far, sorted descending.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TopKState {
    /// The vertex's own PageRank value.
    pub own_rank: f64,
    /// Best `k` `(rank, vertex)` entries reachable so far, highest first.
    pub entries: Vec<RankEntry>,
}

/// The top-k ranking vertex program.
#[derive(Debug, Clone)]
pub struct TopKRanking {
    /// Algorithm parameters.
    pub params: TopKParams,
    /// Input ranks, one per vertex of the graph the program will run on
    /// (typically the output of a PageRank run on the same graph).
    pub ranks: Vec<f64>,
}

impl TopKRanking {
    /// Creates a top-k ranking program over the given per-vertex input ranks.
    pub fn new(params: TopKParams, ranks: Vec<f64>) -> Self {
        Self { params, ranks }
    }

    /// Runs the program and returns the final per-vertex top-k lists and the
    /// run profile.
    pub fn run(&self, engine: &BspEngine, graph: &CsrGraph) -> TopKResult {
        assert_eq!(
            self.ranks.len(),
            graph.num_vertices(),
            "input ranks must cover every vertex of the graph"
        );
        let result = engine.run(graph, self);
        Self::assemble(result)
    }

    /// [`TopKRanking::run`] against pre-built [`GraphStorage`](predict_bsp::GraphStorage), so repeated
    /// runs over one graph pay shard construction once. Byte-identical to
    /// `run` (the engine's storage contract).
    pub fn run_storage(
        &self,
        engine: &BspEngine,
        storage: &predict_bsp::GraphStorage,
    ) -> TopKResult {
        assert_eq!(
            self.ranks.len(),
            storage.num_vertices(),
            "input ranks must cover every vertex of the graph"
        );
        let result = engine.run_storage(storage, self);
        Self::assemble(result)
    }

    fn assemble(result: predict_bsp::BspRunResult<TopKState>) -> TopKResult {
        TopKResult {
            top_k: result.values,
            iterations: result.profile.num_iterations(),
            profile: result.profile,
            halt_reason: result.halt_reason,
        }
    }

    /// Merges `incoming` entries into `entries`, keeping the `k` highest
    /// distinct vertices. Returns `true` when the list changed.
    fn merge_into(&self, entries: &mut Vec<RankEntry>, incoming: &[RankEntry]) -> bool {
        let before = entries.clone();
        entries.extend_from_slice(incoming);
        // Sort by rank descending, break ties by vertex id for determinism.
        entries.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then_with(|| a.1.cmp(&b.1)));
        entries.dedup_by_key(|e| e.1);
        entries.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then_with(|| a.1.cmp(&b.1)));
        entries.truncate(self.params.k);
        *entries != before
    }
}

/// Output of a top-k ranking run.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// Final top-k list of every vertex.
    pub top_k: Vec<TopKState>,
    /// Number of supersteps executed.
    pub iterations: usize,
    /// Full run profile.
    pub profile: predict_bsp::RunProfile,
    /// Why the run terminated.
    pub halt_reason: predict_bsp::HaltReason,
}

impl VertexProgram for TopKRanking {
    type VertexValue = TopKState;
    type Message = Vec<RankEntry>;

    fn name(&self) -> &'static str {
        "topk-ranking"
    }

    fn init_vertex(&self, vertex: VertexId, _ctx: &InitContext<'_>) -> TopKState {
        let own_rank = self.ranks.get(vertex as usize).copied().unwrap_or(0.0);
        TopKState {
            own_rank,
            entries: vec![(own_rank, vertex)],
        }
    }

    fn compute(
        &self,
        ctx: &mut ComputeContext<'_, TopKState, Vec<RankEntry>>,
        messages: &[Vec<RankEntry>],
    ) {
        if ctx.superstep == 0 {
            // First iteration: every vertex advertises its own rank.
            let own = vec![(ctx.value.own_rank, ctx.vertex)];
            ctx.send_to_all_neighbors(own);
            ctx.vote_to_halt();
            return;
        }

        let mut changed = false;
        for msg in messages {
            changed |= self.merge_into(&mut ctx.value.entries, msg);
        }
        if changed {
            ctx.aggregate(UPDATED_VERTICES_AGGREGATOR, 1.0);
            let update = ctx.value.entries.clone();
            ctx.send_to_all_neighbors(update);
        }
        ctx.vote_to_halt();
    }

    fn message_size_bytes(&self, msg: &Vec<RankEntry>) -> u64 {
        // Each entry is an 8-byte rank plus a 4-byte vertex id.
        (msg.len() * 12) as u64
    }

    fn master_halt(&self, superstep: usize, aggregates: &Aggregates) -> bool {
        if superstep == 0 {
            return false;
        }
        let updated = aggregates.get_or(UPDATED_VERTICES_AGGREGATOR, 0.0);
        let total = self.ranks.len().max(1) as f64;
        updated / total < self.params.tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{PageRank, PageRankParams};
    use predict_bsp::{BspConfig, ClusterCostConfig};
    use predict_graph::generators::{chain, generate_rmat, RmatConfig};
    use predict_graph::EdgeList;

    fn engine() -> BspEngine {
        BspEngine::new(BspConfig::with_workers(4).with_cost(ClusterCostConfig::noiseless()))
    }

    fn uniform_ranks(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i + 1) as f64 / n as f64).collect()
    }

    #[test]
    fn propagates_best_rank_along_a_chain() {
        // Chain 0 -> 1 -> 2 -> 3 -> 4 with ranks increasing by vertex id:
        // vertex 4 has the highest rank but nothing downstream, vertex 0 can
        // only ever see its own rank propagated forward.
        let g = chain(5);
        let ranks = uniform_ranks(5);
        let topk = TopKRanking::new(TopKParams::new(3, 0.0), ranks.clone());
        let result = topk.run(&engine(), &g);
        // Vertex 4 receives everything upstream; its best reachable ranks are
        // its own (1.0) plus the best of what flowed downstream.
        let v4 = &result.top_k[4];
        assert_eq!(v4.entries.len(), 3);
        assert!((v4.entries[0].0 - 1.0).abs() < 1e-12);
        // Vertex 0 never receives messages, so it only knows itself.
        assert_eq!(result.top_k[0].entries, vec![(ranks[0], 0)]);
    }

    #[test]
    fn entries_are_sorted_descending_and_bounded_by_k() {
        let g = generate_rmat(&RmatConfig::new(8, 6).with_seed(1));
        let ranks = uniform_ranks(g.num_vertices());
        let topk = TopKRanking::new(TopKParams::new(4, 0.001), ranks);
        let result = topk.run(&engine(), &g);
        for state in &result.top_k {
            assert!(state.entries.len() <= 4);
            for pair in state.entries.windows(2) {
                assert!(pair[0].0 >= pair[1].0);
            }
        }
    }

    #[test]
    fn message_volume_decreases_over_iterations() {
        // The defining property of the paper's "variable number of messages"
        // category: later iterations send far fewer messages than early ones.
        let g = generate_rmat(&RmatConfig::new(9, 6).with_seed(3));
        let ranks = uniform_ranks(g.num_vertices());
        let topk = TopKRanking::new(TopKParams::new(5, 0.0001), ranks);
        let result = topk.run(&engine(), &g);
        let totals = result.profile.per_superstep_totals();
        assert!(totals.len() >= 3, "expected at least 3 iterations");
        let first = totals[1].total_messages();
        let last = totals[totals.len() - 1].total_messages();
        assert!(
            last < first / 2,
            "message volume should shrink: first {first}, last {last}"
        );
    }

    #[test]
    fn runs_on_real_pagerank_output() {
        let g = generate_rmat(&RmatConfig::new(8, 6).with_seed(5));
        let pr =
            PageRank::new(PageRankParams::with_epsilon(0.001, g.num_vertices())).run(&engine(), &g);
        let topk = TopKRanking::new(TopKParams::default(), pr.ranks.clone());
        let result = topk.run(&engine(), &g);
        assert!(result.iterations >= 2);
        // Every vertex's list contains ranks that actually exist in the input.
        for state in &result.top_k {
            for &(rank, v) in &state.entries {
                assert!((rank - pr.ranks[v as usize]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn looser_tolerance_means_fewer_iterations() {
        let g = generate_rmat(&RmatConfig::new(9, 6).with_seed(7));
        let ranks = uniform_ranks(g.num_vertices());
        let loose = TopKRanking::new(TopKParams::new(5, 0.05), ranks.clone()).run(&engine(), &g);
        let tight = TopKRanking::new(TopKParams::new(5, 0.0005), ranks).run(&engine(), &g);
        assert!(loose.iterations <= tight.iterations);
    }

    #[test]
    fn merge_into_deduplicates_vertices() {
        let topk = TopKRanking::new(TopKParams::new(3, 0.1), vec![0.0; 4]);
        let mut entries = vec![(0.5, 1)];
        let changed = topk.merge_into(&mut entries, &[(0.5, 1), (0.9, 2), (0.1, 3)]);
        assert!(changed);
        assert_eq!(entries, vec![(0.9, 2), (0.5, 1), (0.1, 3)]);
        // Re-merging the same data changes nothing.
        let changed_again = topk.merge_into(&mut entries, &[(0.9, 2)]);
        assert!(!changed_again);
    }

    #[test]
    fn message_size_reflects_entry_count() {
        let topk = TopKRanking::new(TopKParams::default(), vec![0.0]);
        assert_eq!(topk.message_size_bytes(&vec![]), 0);
        assert_eq!(topk.message_size_bytes(&vec![(0.1, 1), (0.2, 2)]), 24);
    }

    #[test]
    #[should_panic(expected = "must cover every vertex")]
    fn mismatched_rank_vector_panics() {
        let el: EdgeList = [(0u32, 1u32)].into_iter().collect();
        let g = CsrGraph::from_edge_list(&el);
        let topk = TopKRanking::new(TopKParams::default(), vec![0.5]);
        let _ = topk.run(&engine(), &g);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = TopKParams::new(0, 0.1);
    }
}
