//! The iterative graph algorithms evaluated by PREDIcT.
//!
//! These are the workloads of the paper's evaluation (section 4 and 5),
//! implemented as vertex programs on top of the [`predict_bsp`] engine:
//!
//! | Paper name | Module | Runtime pattern | Convergence |
//! |---|---|---|---|
//! | PageRank (PR) | [`pagerank`] | constant per iteration | average rank delta < τ (absolute) |
//! | Top-k ranking (TOP-K) | [`topk`] | variable message *counts* | updated-vertex ratio < τ |
//! | Semi-clustering (SC) | [`semi_clustering`] | variable message *sizes* | updated-cluster ratio < τ |
//! | Connected components (CC) | [`connected_components`] | sparse, shrinking frontier | fixed point |
//! | Neighborhood estimation (NH) | [`neighborhood`] | shrinking frontier | changed-sketch ratio < τ |
//! | SSSP (extra) | [`sssp`] | sparse frontier | fixed point |
//!
//! The [`workload`] module wraps each of them in the uniform [`Workload`]
//! interface the prediction pipeline consumes, including per-graph preparation
//! (undirected conversion, PageRank pre-pass for top-k).
//!
//! # Example
//!
//! ```
//! use predict_algorithms::pagerank::{PageRank, PageRankParams};
//! use predict_bsp::{BspConfig, BspEngine};
//! use predict_graph::generators::{generate_rmat, RmatConfig};
//!
//! let graph = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
//! let engine = BspEngine::new(BspConfig::default());
//! let result = PageRank::new(PageRankParams::with_epsilon(0.01, graph.num_vertices()))
//!     .run(&engine, &graph);
//! assert!(result.iterations > 1);
//! ```

pub mod connected_components;
pub mod convergence;
pub mod neighborhood;
pub mod pagerank;
pub mod semi_clustering;
pub mod sssp;
pub mod topk;
pub mod workload;

pub use connected_components::{ConnectedComponents, ConnectedComponentsResult};
pub use convergence::ConvergenceKind;
pub use neighborhood::{
    NeighborhoodEstimation, NeighborhoodParams, NeighborhoodResult, NeighborhoodSketch,
};
pub use pagerank::{PageRank, PageRankParams, PageRankResult};
pub use semi_clustering::{
    SemiCluster, SemiClusterList, SemiClustering, SemiClusteringParams, SemiClusteringResult,
};
pub use sssp::{ShortestPaths, ShortestPathsResult};
pub use topk::{TopKParams, TopKRanking, TopKResult, TopKState};
pub use workload::{
    to_undirected, ConnectedComponentsWorkload, NeighborhoodWorkload, PageRankWorkload,
    SemiClusteringWorkload, TopKWorkload, Workload, WorkloadRun, WorkloadSpec,
};
