//! Connected components by minimum-label propagation.
//!
//! Labels every vertex with the smallest vertex id of its (weakly) connected
//! component by propagating the smallest id seen so far along edges. The
//! number of active vertices shrinks rapidly after the first iterations while
//! long chains keep a few vertices active for many more — the paper cites
//! this "sparse computation" behaviour (section 1) as the reason per-iteration
//! runtimes can vary by orders of magnitude. The algorithm runs to a fixed
//! point (no tunable convergence threshold).

use predict_bsp::{BspEngine, ComputeContext, InitContext, VertexProgram};
use predict_graph::{CsrGraph, VertexId};

/// Aggregator counting label updates per superstep.
pub const UPDATES_AGGREGATOR: &str = "cc/updates";

/// The connected-components vertex program.
///
/// For weakly connected components of a directed graph, run it on the
/// undirected (mirrored) version of the graph, as
/// [`crate::workload::ConnectedComponentsWorkload`] does.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnectedComponents;

impl ConnectedComponents {
    /// Runs the program and returns per-vertex component labels plus the run
    /// profile.
    pub fn run(&self, engine: &BspEngine, graph: &CsrGraph) -> ConnectedComponentsResult {
        let result = engine.run(graph, self);
        ConnectedComponentsResult {
            labels: result.values,
            iterations: result.profile.num_iterations(),
            profile: result.profile,
            halt_reason: result.halt_reason,
        }
    }
}

/// Output of a connected-components run.
#[derive(Debug, Clone)]
pub struct ConnectedComponentsResult {
    /// Component label (smallest reachable vertex id) of every vertex.
    pub labels: Vec<VertexId>,
    /// Number of supersteps executed.
    pub iterations: usize,
    /// Full run profile.
    pub profile: predict_bsp::RunProfile,
    /// Why the run terminated.
    pub halt_reason: predict_bsp::HaltReason,
}

impl ConnectedComponentsResult {
    /// Number of distinct components found.
    pub fn num_components(&self) -> usize {
        let mut labels = self.labels.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }
}

impl VertexProgram for ConnectedComponents {
    type VertexValue = VertexId;
    type Message = VertexId;

    fn name(&self) -> &'static str {
        "connected-components"
    }

    fn init_vertex(&self, vertex: VertexId, _ctx: &InitContext<'_>) -> VertexId {
        vertex
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, VertexId, VertexId>, messages: &[VertexId]) {
        if ctx.superstep == 0 {
            // Seed the propagation with the vertex's own id.
            let own = *ctx.value;
            ctx.send_to_all_neighbors(own);
            ctx.vote_to_halt();
            return;
        }
        let incoming_min = messages.iter().copied().min().unwrap_or(VertexId::MAX);
        if incoming_min < *ctx.value {
            *ctx.value = incoming_min;
            ctx.aggregate(UPDATES_AGGREGATOR, 1.0);
            ctx.send_to_all_neighbors(incoming_min);
        }
        ctx.vote_to_halt();
    }

    fn message_size_bytes(&self, _msg: &VertexId) -> u64 {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_bsp::{BspConfig, ClusterCostConfig, HaltReason};
    use predict_graph::generators::{chain, generate_rmat, RmatConfig};
    use predict_graph::properties::weakly_connected_components;
    use predict_graph::EdgeList;

    fn engine() -> BspEngine {
        BspEngine::new(BspConfig::with_workers(4).with_cost(ClusterCostConfig::noiseless()))
    }

    fn undirected(graph: &CsrGraph) -> CsrGraph {
        CsrGraph::from_edge_list(&graph.to_edge_list().to_undirected())
    }

    #[test]
    fn two_components_get_two_labels() {
        // 0 - 1 - 2 and 3 - 4, undirected.
        let el: EdgeList = [(0u32, 1u32), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)]
            .into_iter()
            .collect();
        let g = CsrGraph::from_edge_list(&el);
        let result = ConnectedComponents.run(&engine(), &g);
        assert_eq!(result.labels[0], 0);
        assert_eq!(result.labels[1], 0);
        assert_eq!(result.labels[2], 0);
        assert_eq!(result.labels[3], 3);
        assert_eq!(result.labels[4], 3);
        assert_eq!(result.num_components(), 2);
        assert_eq!(result.halt_reason, HaltReason::AllVerticesHalted);
    }

    #[test]
    fn matches_bfs_based_reference_on_random_graph() {
        let g = undirected(&generate_rmat(&RmatConfig::new(8, 4).with_seed(7)));
        let result = ConnectedComponents.run(&engine(), &g);
        let reference = weakly_connected_components(&g);
        // Same partition into components: two vertices share a BSP label iff
        // they share a reference label.
        for v in g.vertices() {
            for u in g.vertices().take(200) {
                let same_bsp = result.labels[v as usize] == result.labels[u as usize];
                let same_ref = reference[v as usize] == reference[u as usize];
                assert_eq!(same_bsp, same_ref, "vertices {v} and {u} disagree");
            }
        }
    }

    #[test]
    fn chain_requires_length_proportional_iterations() {
        // Label 0 has to travel the whole chain, one hop per superstep.
        let g = undirected(&chain(64));
        let result = ConnectedComponents.run(&engine(), &g);
        assert!(
            result.iterations >= 63,
            "got only {} iterations",
            result.iterations
        );
        assert!(result.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn active_vertices_shrink_over_time() {
        // The paper's runtime-variability observation: after the first few
        // supersteps only a small frontier keeps updating.
        let g = undirected(&generate_rmat(&RmatConfig::new(9, 4).with_seed(3)));
        let result = ConnectedComponents.run(&engine(), &g);
        let totals = result.profile.per_superstep_totals();
        assert!(totals.len() >= 3);
        let first = totals[0].active_vertices;
        let last = totals[totals.len() - 1].active_vertices;
        assert!(
            last < first / 4,
            "active vertices should collapse: {first} -> {last}"
        );
    }

    #[test]
    fn isolated_vertices_keep_their_own_label() {
        let mut el = EdgeList::new();
        el.push(0, 1);
        el.push(1, 0);
        el.ensure_vertices(4);
        let g = CsrGraph::from_edge_list(&el);
        let result = ConnectedComponents.run(&engine(), &g);
        assert_eq!(result.labels[2], 2);
        assert_eq!(result.labels[3], 3);
        assert_eq!(result.num_components(), 3);
    }
}
