//! Uniform workload interface used by the prediction pipeline.
//!
//! The PREDIcT pipeline needs to execute "the algorithm" on both a sample
//! graph (with a transformed convergence threshold) and the full graph without
//! caring which algorithm it is. [`Workload`] provides that uniform surface:
//! a name, the convergence-kind metadata the transform function needs, the
//! current threshold, a way to rebuild the workload with a different
//! threshold, and `run`, which handles any per-graph preparation the
//! algorithm needs (undirected conversion for semi-clustering and connected
//! components, a PageRank pre-pass for top-k ranking) and returns the run
//! profile PREDIcT trains and predicts on.

use crate::connected_components::ConnectedComponents;
use crate::convergence::ConvergenceKind;
use crate::neighborhood::{NeighborhoodEstimation, NeighborhoodParams};
use crate::pagerank::{PageRank, PageRankParams};
use crate::semi_clustering::{SemiClustering, SemiClusteringParams};
use crate::topk::{TopKParams, TopKRanking};
use predict_bsp::{BspEngine, GraphStorage, HaltReason, RunProfile};
use predict_graph::CsrGraph;
use serde::{Deserialize, Serialize};

/// Result of executing a workload on one graph.
///
/// Serializable so the persistent artifact store can cache actual runs
/// across process restarts (a warm-restarted service replays the stored
/// profile instead of re-executing the workload).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadRun {
    /// Profile of the run (per-superstep features and simulated times).
    pub profile: RunProfile,
    /// Why the run terminated.
    pub halt_reason: HaltReason,
}

impl WorkloadRun {
    /// Number of iterations (supersteps) the run executed.
    pub fn iterations(&self) -> usize {
        self.profile.num_iterations()
    }
}

/// An iterative-analytics workload PREDIcT can predict.
///
/// Workloads are `Send + Sync + Debug`: predictions run concurrently behind
/// shared references, and the `Debug` representation doubles as the default
/// [`Workload::cache_token`] that keys cached prediction artifacts.
pub trait Workload: Send + Sync + std::fmt::Debug {
    /// Short name used in reports (matches the paper's abbreviations where
    /// possible: PR, TOP-K, SC, CC, NH).
    fn name(&self) -> &'static str;

    /// A token that uniquely identifies this workload *configuration* (name
    /// plus every parameter that influences a run). Prediction sessions key
    /// cached sample-run artifacts and trained cost models by this token, so
    /// two workloads with equal tokens must behave identically on every
    /// graph. The default uses the `Debug` representation, which covers all
    /// parameters of the derive-`Debug` workloads in this crate.
    fn cache_token(&self) -> String {
        format!("{}#{:?}", self.name(), self)
    }

    /// Whether the convergence threshold is tuned to the dataset size — the
    /// input to the default transform rule.
    fn convergence(&self) -> ConvergenceKind;

    /// Current convergence threshold `τ` (0.0 for fixed-point workloads).
    fn threshold(&self) -> f64;

    /// A copy of this workload with a different convergence threshold. Used
    /// by the transform function when configuring the sample run.
    fn with_threshold(&self, threshold: f64) -> Box<dyn Workload>;

    /// Executes the workload on `graph` and returns the run profile.
    fn run(&self, engine: &BspEngine, graph: &CsrGraph) -> WorkloadRun;

    /// Executes the workload against pre-built [`GraphStorage`] of `graph`,
    /// so callers that run the same graph repeatedly (the prediction
    /// session's sample and actual runs) pay shard construction once instead
    /// of once per run. `storage` must have been built from `graph` with the
    /// engine's worker count and partition strategy; results are
    /// byte-identical to [`Workload::run`] (the engine's storage contract).
    ///
    /// The default ignores `storage` and delegates to `run` — correct for
    /// workloads that derive a different graph first (SC and CC convert to
    /// undirected form, so storage of the original graph does not apply).
    fn run_storage(
        &self,
        engine: &BspEngine,
        graph: &CsrGraph,
        storage: &GraphStorage,
    ) -> WorkloadRun {
        let _ = storage;
        self.run(engine, graph)
    }

    /// A serializable description of this workload's configuration, when one
    /// exists. Executors that ship work across a process boundary (the
    /// cluster transports) send this spec to worker processes instead of the
    /// trait object; the five workloads of this crate all return `Some`.
    /// External `Workload` implementations may return `None` (the default),
    /// in which case remote execution falls back to in-memory.
    fn spec(&self) -> Option<WorkloadSpec> {
        None
    }
}

/// Serializable configuration of one of this crate's five workloads — the
/// wire-transportable counterpart of the `dyn Workload` trait objects (see
/// [`Workload::spec`]). A spec plus a graph fully determines a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// [`PageRankWorkload`].
    PageRank {
        /// PageRank parameters.
        params: PageRankParams,
    },
    /// [`TopKWorkload`].
    TopK {
        /// Top-k parameters.
        params: TopKParams,
        /// Tolerance level of the PageRank pre-pass.
        pagerank_epsilon: f64,
    },
    /// [`SemiClusteringWorkload`].
    SemiClustering {
        /// Semi-clustering parameters.
        params: SemiClusteringParams,
    },
    /// [`ConnectedComponentsWorkload`].
    ConnectedComponents {},
    /// [`NeighborhoodWorkload`].
    Neighborhood {
        /// Neighborhood-estimation parameters.
        params: NeighborhoodParams,
    },
}

/// Undirected form of `graph`, built the way SC and CC build it before they
/// run (every edge mirrored, then re-frozen). Public so out-of-process
/// executors can reproduce exactly the graph those workloads execute on.
pub fn to_undirected(graph: &CsrGraph) -> CsrGraph {
    CsrGraph::from_edge_list(&graph.to_edge_list().to_undirected())
}

/// PageRank workload (constant per-iteration runtime; absolute-aggregate
/// convergence).
#[derive(Debug, Clone, Copy)]
pub struct PageRankWorkload {
    /// PageRank parameters (damping factor, threshold).
    pub params: PageRankParams,
}

impl PageRankWorkload {
    /// Creates the workload from explicit parameters.
    pub fn new(params: PageRankParams) -> Self {
        Self { params }
    }

    /// The paper's parameterization: threshold `τ = ε / N` for the graph the
    /// prediction targets.
    pub fn with_epsilon(epsilon: f64, num_vertices: usize) -> Self {
        Self {
            params: PageRankParams::with_epsilon(epsilon, num_vertices),
        }
    }
}

impl Workload for PageRankWorkload {
    fn name(&self) -> &'static str {
        "PR"
    }

    fn convergence(&self) -> ConvergenceKind {
        ConvergenceKind::AbsoluteAggregate
    }

    fn threshold(&self) -> f64 {
        self.params.tolerance
    }

    fn with_threshold(&self, threshold: f64) -> Box<dyn Workload> {
        Box::new(Self {
            params: self.params.with_tolerance(threshold),
        })
    }

    fn spec(&self) -> Option<WorkloadSpec> {
        Some(WorkloadSpec::PageRank {
            params: self.params,
        })
    }

    fn run(&self, engine: &BspEngine, graph: &CsrGraph) -> WorkloadRun {
        let result = PageRank::new(self.params).run(engine, graph);
        WorkloadRun {
            profile: result.profile,
            halt_reason: result.halt_reason,
        }
    }

    fn run_storage(
        &self,
        engine: &BspEngine,
        _graph: &CsrGraph,
        storage: &GraphStorage,
    ) -> WorkloadRun {
        let result = PageRank::new(self.params).run_storage(engine, storage);
        WorkloadRun {
            profile: result.profile,
            halt_reason: result.halt_reason,
        }
    }
}

/// Top-k ranking workload (variable message counts; ratio convergence).
///
/// The paper runs top-k ranking on the *output* of PageRank, so this workload
/// first runs a PageRank pre-pass on whatever graph it is given (sample or
/// full) and feeds those ranks into the top-k program. Only the top-k phase
/// is profiled.
#[derive(Debug, Clone, Copy)]
pub struct TopKWorkload {
    /// Top-k parameters.
    pub params: TopKParams,
    /// Parameters of the PageRank pre-pass that produces the input ranks.
    pub pagerank_epsilon: f64,
}

impl TopKWorkload {
    /// Creates the workload with the given top-k parameters and a PageRank
    /// pre-pass tolerance level `ε` (threshold `ε / N` of the graph being
    /// run on).
    pub fn new(params: TopKParams, pagerank_epsilon: f64) -> Self {
        Self {
            params,
            pagerank_epsilon,
        }
    }
}

impl Default for TopKWorkload {
    fn default() -> Self {
        Self {
            params: TopKParams::default(),
            pagerank_epsilon: 0.01,
        }
    }
}

impl Workload for TopKWorkload {
    fn name(&self) -> &'static str {
        "TOP-K"
    }

    fn convergence(&self) -> ConvergenceKind {
        ConvergenceKind::RelativeRatio
    }

    fn threshold(&self) -> f64 {
        self.params.tolerance
    }

    fn with_threshold(&self, threshold: f64) -> Box<dyn Workload> {
        Box::new(Self {
            params: self.params.with_tolerance(threshold),
            ..*self
        })
    }

    fn spec(&self) -> Option<WorkloadSpec> {
        Some(WorkloadSpec::TopK {
            params: self.params,
            pagerank_epsilon: self.pagerank_epsilon,
        })
    }

    fn run(&self, engine: &BspEngine, graph: &CsrGraph) -> WorkloadRun {
        let ranks = PageRank::new(PageRankParams::with_epsilon(
            self.pagerank_epsilon,
            graph.num_vertices(),
        ))
        .run(engine, graph)
        .ranks;
        let result = TopKRanking::new(self.params, ranks).run(engine, graph);
        WorkloadRun {
            profile: result.profile,
            halt_reason: result.halt_reason,
        }
    }

    fn run_storage(
        &self,
        engine: &BspEngine,
        _graph: &CsrGraph,
        storage: &GraphStorage,
    ) -> WorkloadRun {
        // Both phases run on the given graph, so both reuse its storage.
        let ranks = PageRank::new(PageRankParams::with_epsilon(
            self.pagerank_epsilon,
            storage.num_vertices(),
        ))
        .run_storage(engine, storage)
        .ranks;
        let result = TopKRanking::new(self.params, ranks).run_storage(engine, storage);
        WorkloadRun {
            profile: result.profile,
            halt_reason: result.halt_reason,
        }
    }
}

/// Semi-clustering workload (variable message sizes; ratio convergence).
/// Converts the input graph to its undirected form, as the paper does.
#[derive(Debug, Clone, Copy, Default)]
pub struct SemiClusteringWorkload {
    /// Semi-clustering parameters.
    pub params: SemiClusteringParams,
}

impl SemiClusteringWorkload {
    /// Creates the workload.
    pub fn new(params: SemiClusteringParams) -> Self {
        Self { params }
    }
}

impl Workload for SemiClusteringWorkload {
    fn name(&self) -> &'static str {
        "SC"
    }

    fn convergence(&self) -> ConvergenceKind {
        ConvergenceKind::RelativeRatio
    }

    fn threshold(&self) -> f64 {
        self.params.tolerance
    }

    fn with_threshold(&self, threshold: f64) -> Box<dyn Workload> {
        Box::new(Self {
            params: self.params.with_tolerance(threshold),
        })
    }

    fn spec(&self) -> Option<WorkloadSpec> {
        Some(WorkloadSpec::SemiClustering {
            params: self.params,
        })
    }

    fn run(&self, engine: &BspEngine, graph: &CsrGraph) -> WorkloadRun {
        let undirected = to_undirected(graph);
        let result = SemiClustering::new(self.params).run(engine, &undirected);
        WorkloadRun {
            profile: result.profile,
            halt_reason: result.halt_reason,
        }
    }
}

/// Connected-components workload (fixed point, no threshold). Runs on the
/// undirected form of the graph (weak connectivity).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnectedComponentsWorkload;

impl Workload for ConnectedComponentsWorkload {
    fn name(&self) -> &'static str {
        "CC"
    }

    fn convergence(&self) -> ConvergenceKind {
        ConvergenceKind::FixedPoint
    }

    fn threshold(&self) -> f64 {
        0.0
    }

    fn with_threshold(&self, _threshold: f64) -> Box<dyn Workload> {
        Box::new(Self)
    }

    fn spec(&self) -> Option<WorkloadSpec> {
        Some(WorkloadSpec::ConnectedComponents {})
    }

    fn run(&self, engine: &BspEngine, graph: &CsrGraph) -> WorkloadRun {
        let undirected = to_undirected(graph);
        let result = ConnectedComponents.run(engine, &undirected);
        WorkloadRun {
            profile: result.profile,
            halt_reason: result.halt_reason,
        }
    }
}

/// Neighborhood-estimation workload (ratio convergence).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeighborhoodWorkload {
    /// Neighborhood-estimation parameters.
    pub params: NeighborhoodParams,
}

impl NeighborhoodWorkload {
    /// Creates the workload.
    pub fn new(params: NeighborhoodParams) -> Self {
        Self { params }
    }
}

impl Workload for NeighborhoodWorkload {
    fn name(&self) -> &'static str {
        "NH"
    }

    fn convergence(&self) -> ConvergenceKind {
        ConvergenceKind::RelativeRatio
    }

    fn threshold(&self) -> f64 {
        self.params.tolerance
    }

    fn with_threshold(&self, threshold: f64) -> Box<dyn Workload> {
        Box::new(Self {
            params: self.params.with_tolerance(threshold),
        })
    }

    fn spec(&self) -> Option<WorkloadSpec> {
        Some(WorkloadSpec::Neighborhood {
            params: self.params,
        })
    }

    fn run(&self, engine: &BspEngine, graph: &CsrGraph) -> WorkloadRun {
        let result = NeighborhoodEstimation::new(self.params).run(engine, graph);
        WorkloadRun {
            profile: result.profile,
            halt_reason: result.halt_reason,
        }
    }

    fn run_storage(
        &self,
        engine: &BspEngine,
        _graph: &CsrGraph,
        storage: &GraphStorage,
    ) -> WorkloadRun {
        let result = NeighborhoodEstimation::new(self.params).run_storage(engine, storage);
        WorkloadRun {
            profile: result.profile,
            halt_reason: result.halt_reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_bsp::{BspConfig, ClusterCostConfig};
    use predict_graph::generators::{generate_rmat, RmatConfig};

    fn engine() -> BspEngine {
        BspEngine::new(BspConfig::with_workers(4).with_cost(ClusterCostConfig::noiseless()))
    }

    fn graph() -> CsrGraph {
        generate_rmat(&RmatConfig::new(8, 5).with_seed(11))
    }

    #[test]
    fn all_workloads_run_and_profile() {
        let g = graph();
        let workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(PageRankWorkload::with_epsilon(0.01, g.num_vertices())),
            Box::new(TopKWorkload::default()),
            Box::new(SemiClusteringWorkload::default()),
            Box::new(ConnectedComponentsWorkload),
            Box::new(NeighborhoodWorkload::default()),
        ];
        for w in &workloads {
            let run = w.run(&engine(), &g);
            assert!(run.iterations() >= 2, "{} did not iterate", w.name());
            assert!(run.profile.superstep_phase_ms() > 0.0);
        }
    }

    #[test]
    fn run_storage_is_byte_identical_to_run_for_every_workload() {
        let g = graph();
        let engine = engine();
        let storage = GraphStorage::shard_graph(
            &g,
            engine.config().num_workers,
            engine.config().partition_strategy,
        );
        let workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(PageRankWorkload::with_epsilon(0.01, g.num_vertices())),
            Box::new(TopKWorkload::default()),
            Box::new(SemiClusteringWorkload::default()),
            Box::new(ConnectedComponentsWorkload),
            Box::new(NeighborhoodWorkload::default()),
        ];
        for w in &workloads {
            let direct = w.run(&engine, &g);
            let via_storage = w.run_storage(&engine, &g, &storage);
            assert_eq!(direct.profile, via_storage.profile, "{}", w.name());
            assert_eq!(direct.halt_reason, via_storage.halt_reason, "{}", w.name());
        }
    }

    #[test]
    fn names_match_paper_abbreviations() {
        assert_eq!(PageRankWorkload::with_epsilon(0.01, 10).name(), "PR");
        assert_eq!(TopKWorkload::default().name(), "TOP-K");
        assert_eq!(SemiClusteringWorkload::default().name(), "SC");
        assert_eq!(ConnectedComponentsWorkload.name(), "CC");
        assert_eq!(NeighborhoodWorkload::default().name(), "NH");
    }

    #[test]
    fn convergence_kinds_drive_transform_defaults() {
        assert_eq!(
            PageRankWorkload::with_epsilon(0.01, 10).convergence(),
            ConvergenceKind::AbsoluteAggregate
        );
        assert_eq!(
            TopKWorkload::default().convergence(),
            ConvergenceKind::RelativeRatio
        );
        assert_eq!(
            SemiClusteringWorkload::default().convergence(),
            ConvergenceKind::RelativeRatio
        );
        assert_eq!(
            ConnectedComponentsWorkload.convergence(),
            ConvergenceKind::FixedPoint
        );
    }

    #[test]
    fn with_threshold_rebuilds_the_workload() {
        let pr = PageRankWorkload::with_epsilon(0.01, 1000);
        let scaled = pr.with_threshold(pr.threshold() * 10.0);
        assert!((scaled.threshold() - pr.threshold() * 10.0).abs() < 1e-15);
        assert_eq!(scaled.name(), "PR");

        let sc = SemiClusteringWorkload::default();
        let same = sc.with_threshold(0.05);
        assert_eq!(same.threshold(), 0.05);
    }

    #[test]
    fn scaled_threshold_changes_pagerank_iterations() {
        let g = graph();
        let engine = engine();
        let tight = PageRankWorkload::with_epsilon(0.001, g.num_vertices());
        let loose = tight.with_threshold(tight.threshold() * 100.0);
        let tight_run = tight.run(&engine, &g);
        let loose_run = loose.run(&engine, &g);
        assert!(tight_run.iterations() > loose_run.iterations());
    }
}
