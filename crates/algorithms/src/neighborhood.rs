//! Neighborhood estimation with Flajolet–Martin sketches.
//!
//! Estimates, for every vertex, the number of vertices reachable within a
//! growing number of hops — the "total number of professionals reachable
//! within a few hops" workload the paper's introduction attributes to
//! LinkedIn, and the `NH` column of Table 3. The classic distributed
//! formulation (HADI / PEGASUS, reference \[20\] of the paper) gives every
//! vertex a set of Flajolet–Martin bitstrings; each iteration a vertex ORs in
//! its in-neighbors' bitstrings, so after `h` iterations the sketch encodes
//! the size of the `h`-hop neighborhood. The run converges when the total
//! estimated neighborhood size stops growing by more than a ratio `τ`.

use predict_bsp::{Aggregates, BspEngine, ComputeContext, InitContext, VertexProgram};
use predict_graph::{CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Aggregator summing the per-vertex neighborhood estimates of a superstep.
pub const TOTAL_ESTIMATE_AGGREGATOR: &str = "neighborhood/total_estimate";
/// Aggregator counting vertices whose sketch changed this superstep.
pub const CHANGED_AGGREGATOR: &str = "neighborhood/changed";
/// Aggregator counting the vertices that executed compute this superstep.
pub const ACTIVE_AGGREGATOR: &str = "neighborhood/active";

/// Correction constant of the Flajolet–Martin estimator.
const FM_PHI: f64 = 0.77351;

/// Parameters of neighborhood estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeighborhoodParams {
    /// Number of independent Flajolet–Martin bitstrings per vertex (more
    /// sketches = lower estimate variance, bigger messages).
    pub num_sketches: usize,
    /// Convergence threshold: the run stops when the relative growth of the
    /// summed neighborhood estimate falls below this ratio.
    pub tolerance: f64,
    /// Seed for the deterministic hash mixing used by the sketches.
    pub seed: u64,
}

impl Default for NeighborhoodParams {
    fn default() -> Self {
        Self {
            num_sketches: 4,
            tolerance: 0.01,
            seed: 0xFA57,
        }
    }
}

impl NeighborhoodParams {
    /// Creates a parameter set.
    pub fn new(num_sketches: usize, tolerance: f64) -> Self {
        assert!(num_sketches > 0, "at least one sketch is required");
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        Self {
            num_sketches,
            tolerance,
            seed: 0xFA57,
        }
    }

    /// Returns a copy with a different convergence threshold.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }
}

/// Per-vertex Flajolet–Martin sketch set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NeighborhoodSketch {
    /// One 64-bit FM bitstring per sketch.
    pub bitmasks: Vec<u64>,
}

impl NeighborhoodSketch {
    /// Estimated number of distinct vertices encoded in the sketch set
    /// (average of the per-sketch estimates).
    pub fn estimate(&self) -> f64 {
        if self.bitmasks.is_empty() {
            return 0.0;
        }
        let mean_r: f64 = self
            .bitmasks
            .iter()
            .map(|&m| lowest_zero_bit(m) as f64)
            .sum::<f64>()
            / self.bitmasks.len() as f64;
        2f64.powf(mean_r) / FM_PHI
    }

    /// ORs another sketch into this one; returns `true` if any bit changed.
    pub fn union_with(&mut self, other: &NeighborhoodSketch) -> bool {
        let mut changed = false;
        for (a, b) in self.bitmasks.iter_mut().zip(other.bitmasks.iter()) {
            let merged = *a | *b;
            if merged != *a {
                *a = merged;
                changed = true;
            }
        }
        changed
    }
}

/// Index of the lowest zero bit of `mask` (the FM estimator's `R` statistic).
fn lowest_zero_bit(mask: u64) -> u32 {
    (!mask).trailing_zeros()
}

/// Geometric hash: maps `(vertex, sketch, seed)` to a bit index with
/// `P(index = i) = 2^-(i+1)`.
fn fm_bit(vertex: VertexId, sketch: usize, seed: u64) -> u32 {
    let mut h = seed ^ (vertex as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= (sketch as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 31;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 29;
    // The number of trailing zeros of a uniform 64-bit value is geometrically
    // distributed: P(index = i) = 2^-(i+1).
    if h == 0 {
        62
    } else {
        h.trailing_zeros().min(62)
    }
}

/// The neighborhood-estimation vertex program.
#[derive(Debug, Clone, Copy)]
pub struct NeighborhoodEstimation {
    /// Algorithm parameters.
    pub params: NeighborhoodParams,
}

impl NeighborhoodEstimation {
    /// Creates a neighborhood-estimation program.
    pub fn new(params: NeighborhoodParams) -> Self {
        Self { params }
    }

    /// Runs the program and returns per-vertex neighborhood estimates plus
    /// the run profile.
    pub fn run(&self, engine: &BspEngine, graph: &CsrGraph) -> NeighborhoodResult {
        let result = engine.run(graph, self);
        Self::assemble(result)
    }

    /// [`NeighborhoodEstimation::run`] against pre-built [`GraphStorage`](predict_bsp::GraphStorage),
    /// so repeated runs over one graph pay shard construction once.
    /// Byte-identical to `run` (the engine's storage contract).
    pub fn run_storage(
        &self,
        engine: &BspEngine,
        storage: &predict_bsp::GraphStorage,
    ) -> NeighborhoodResult {
        let result = engine.run_storage(storage, self);
        Self::assemble(result)
    }

    fn assemble(result: predict_bsp::BspRunResult<NeighborhoodSketch>) -> NeighborhoodResult {
        let estimates = result.values.iter().map(|s| s.estimate()).collect();
        NeighborhoodResult {
            sketches: result.values,
            estimates,
            iterations: result.profile.num_iterations(),
            profile: result.profile,
            halt_reason: result.halt_reason,
        }
    }
}

/// Output of a neighborhood-estimation run.
#[derive(Debug, Clone)]
pub struct NeighborhoodResult {
    /// Final sketch of every vertex.
    pub sketches: Vec<NeighborhoodSketch>,
    /// Estimated reachable-vertex count of every vertex.
    pub estimates: Vec<f64>,
    /// Number of supersteps executed.
    pub iterations: usize,
    /// Full run profile.
    pub profile: predict_bsp::RunProfile,
    /// Why the run terminated.
    pub halt_reason: predict_bsp::HaltReason,
}

impl VertexProgram for NeighborhoodEstimation {
    type VertexValue = NeighborhoodSketch;
    type Message = Vec<u64>;

    fn name(&self) -> &'static str {
        "neighborhood-estimation"
    }

    fn init_vertex(&self, vertex: VertexId, _ctx: &InitContext<'_>) -> NeighborhoodSketch {
        let bitmasks = (0..self.params.num_sketches)
            .map(|s| 1u64 << fm_bit(vertex, s, self.params.seed))
            .collect();
        NeighborhoodSketch { bitmasks }
    }

    fn compute(
        &self,
        ctx: &mut ComputeContext<'_, NeighborhoodSketch, Vec<u64>>,
        messages: &[Vec<u64>],
    ) {
        let mut changed = ctx.superstep == 0;
        for msg in messages {
            let other = NeighborhoodSketch {
                bitmasks: msg.clone(),
            };
            changed |= ctx.value.union_with(&other);
        }
        ctx.aggregate(TOTAL_ESTIMATE_AGGREGATOR, ctx.value.estimate());
        ctx.aggregate(ACTIVE_AGGREGATOR, 1.0);
        if changed {
            ctx.aggregate(CHANGED_AGGREGATOR, 1.0);
            let payload = ctx.value.bitmasks.clone();
            ctx.send_to_all_neighbors(payload);
        }
        ctx.vote_to_halt();
    }

    fn message_size_bytes(&self, msg: &Vec<u64>) -> u64 {
        (msg.len() * 8) as u64
    }

    fn master_halt(&self, superstep: usize, aggregates: &Aggregates) -> bool {
        if superstep == 0 {
            return false;
        }
        // Convergence uses the ratio of vertices whose sketch still changed
        // over the vertices that were active — the same "ratio of updates"
        // convergence family as top-k ranking and semi-clustering.
        let changed = aggregates.get_or(CHANGED_AGGREGATOR, 0.0);
        let active = aggregates.get_or(ACTIVE_AGGREGATOR, 0.0).max(1.0);
        changed == 0.0 || changed / active < self.params.tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_bsp::{BspConfig, ClusterCostConfig};
    use predict_graph::generators::{chain, complete, generate_rmat, RmatConfig};

    fn engine() -> BspEngine {
        BspEngine::new(BspConfig::with_workers(4).with_cost(ClusterCostConfig::noiseless()))
    }

    fn undirected(graph: &CsrGraph) -> CsrGraph {
        CsrGraph::from_edge_list(&graph.to_edge_list().to_undirected())
    }

    #[test]
    fn fm_bit_is_deterministic_and_geometric() {
        let a = fm_bit(42, 0, 1);
        let b = fm_bit(42, 0, 1);
        assert_eq!(a, b);
        // Roughly half of all vertices should land on bit 0.
        let zeros = (0..10_000).filter(|&v| fm_bit(v, 0, 7) == 0).count();
        assert!(
            zeros > 4_000 && zeros < 6_000,
            "bit-0 frequency {zeros} not ~50%"
        );
    }

    #[test]
    fn sketch_estimate_grows_with_unions() {
        let params = NeighborhoodParams::new(8, 0.01);
        let program = NeighborhoodEstimation::new(params);
        // Initialization only reads the vertex id, so a bare context works
        // for ids beyond the toy graph's range.
        let ctx = InitContext {
            num_vertices: 4,
            num_edges: 12,
            out_neighbors: &[],
            out_weights: None,
        };
        let mut sketch = program.init_vertex(0, &ctx);
        let single = sketch.estimate();
        for v in 1..500u32 {
            let other = program.init_vertex(v, &ctx);
            sketch.union_with(&other);
        }
        let many = sketch.estimate();
        assert!(
            many > single * 10.0,
            "estimate should grow: {single} -> {many}"
        );
        // FM estimates are rough; accept a factor-3 band around 500.
        assert!(
            many > 150.0 && many < 1_500.0,
            "estimate {many} way off 500"
        );
    }

    #[test]
    fn complete_graph_converges_in_few_iterations() {
        let g = complete(32);
        let result = NeighborhoodEstimation::new(NeighborhoodParams::default()).run(&engine(), &g);
        // Everything is reachable in one hop; the sketches stabilize almost
        // immediately.
        assert!(
            result.iterations <= 5,
            "took {} iterations",
            result.iterations
        );
    }

    #[test]
    fn chain_needs_many_iterations() {
        let g = undirected(&chain(40));
        let result =
            NeighborhoodEstimation::new(NeighborhoodParams::new(4, 0.0)).run(&engine(), &g);
        assert!(
            result.iterations >= 20,
            "sketches must travel the chain, got {} iterations",
            result.iterations
        );
    }

    #[test]
    fn complete_graph_estimates_are_near_the_vertex_count() {
        let g = complete(64);
        let params = NeighborhoodParams::new(16, 0.0);
        let result = NeighborhoodEstimation::new(params).run(&engine(), &g);
        for &e in &result.estimates {
            assert!(
                e > 64.0 / 3.0 && e < 64.0 * 3.0,
                "estimate {e} too far from 64"
            );
        }
    }

    #[test]
    fn downstream_chain_vertices_accumulate_larger_neighborhoods() {
        // Directed chain: sketches flow along edges, so the last vertex hears
        // about every upstream vertex while the first vertex hears nothing.
        let g = chain(64);
        let params = NeighborhoodParams::new(8, 0.0);
        let result = NeighborhoodEstimation::new(params).run(&engine(), &g);
        assert!(
            result.estimates[63] > result.estimates[0] * 4.0,
            "tail estimate {} should dwarf head estimate {}",
            result.estimates[63],
            result.estimates[0]
        );
    }

    #[test]
    fn message_volume_shrinks_as_sketches_saturate() {
        let g = undirected(&generate_rmat(&RmatConfig::new(8, 5).with_seed(4)));
        let result =
            NeighborhoodEstimation::new(NeighborhoodParams::new(4, 0.0)).run(&engine(), &g);
        let totals = result.profile.per_superstep_totals();
        assert!(totals.len() >= 3);
        let first = totals[0].total_messages();
        let last = totals[totals.len() - 1].total_messages();
        assert!(last < first, "messages should shrink: {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "at least one sketch")]
    fn zero_sketches_panics() {
        let _ = NeighborhoodParams::new(0, 0.1);
    }
}
