//! Single-source shortest paths (SSSP).
//!
//! Not part of the paper's evaluation, but the canonical Pregel example and a
//! useful extra workload for exercising the engine: distances relax outward
//! from a source vertex, only vertices whose distance improved send messages,
//! and the run terminates at the fixed point. Like connected components it
//! belongs to the "sparse computation" family with highly variable
//! per-iteration work.

use predict_bsp::{BspEngine, ComputeContext, InitContext, VertexProgram};
use predict_graph::{CsrGraph, VertexId};

/// Aggregator counting distance relaxations per superstep.
pub const RELAXATIONS_AGGREGATOR: &str = "sssp/relaxations";

/// The SSSP vertex program.
#[derive(Debug, Clone, Copy)]
pub struct ShortestPaths {
    /// The source vertex distances are measured from.
    pub source: VertexId,
}

impl ShortestPaths {
    /// Creates an SSSP program rooted at `source`.
    pub fn new(source: VertexId) -> Self {
        Self { source }
    }

    /// Runs the program and returns the distance of every vertex from the
    /// source (`f64::INFINITY` for unreachable vertices) plus the profile.
    pub fn run(&self, engine: &BspEngine, graph: &CsrGraph) -> ShortestPathsResult {
        let result = engine.run(graph, self);
        ShortestPathsResult {
            distances: result.values,
            iterations: result.profile.num_iterations(),
            profile: result.profile,
            halt_reason: result.halt_reason,
        }
    }
}

/// Output of an SSSP run.
#[derive(Debug, Clone)]
pub struct ShortestPathsResult {
    /// Distance of every vertex from the source.
    pub distances: Vec<f64>,
    /// Number of supersteps executed.
    pub iterations: usize,
    /// Full run profile.
    pub profile: predict_bsp::RunProfile,
    /// Why the run terminated.
    pub halt_reason: predict_bsp::HaltReason,
}

impl VertexProgram for ShortestPaths {
    type VertexValue = f64;
    type Message = f64;

    fn name(&self) -> &'static str {
        "sssp"
    }

    fn init_vertex(&self, vertex: VertexId, _ctx: &InitContext<'_>) -> f64 {
        if vertex == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, f64, f64>, messages: &[f64]) {
        let incoming_min = messages.iter().copied().fold(f64::INFINITY, f64::min);
        let candidate = if ctx.superstep == 0 {
            *ctx.value
        } else {
            incoming_min
        };

        if candidate < *ctx.value || (ctx.superstep == 0 && ctx.vertex == self.source) {
            if candidate < *ctx.value {
                *ctx.value = candidate;
            }
            ctx.aggregate(RELAXATIONS_AGGREGATOR, 1.0);
            let base = *ctx.value;
            let weights: Vec<f64> = match ctx.out_weights {
                Some(ws) => ws.iter().map(|&w| w as f64).collect(),
                None => vec![1.0; ctx.out_neighbors.len()],
            };
            for (i, weight) in weights.into_iter().enumerate() {
                let dst = ctx.out_neighbors[i];
                ctx.send(dst, base + weight);
            }
        }
        ctx.vote_to_halt();
    }

    fn message_size_bytes(&self, _msg: &f64) -> u64 {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_bsp::{BspConfig, ClusterCostConfig, HaltReason};
    use predict_graph::generators::{chain, generate_rmat, RmatConfig};
    use predict_graph::properties::bfs_distances_undirected;
    use predict_graph::EdgeList;

    fn engine() -> BspEngine {
        BspEngine::new(BspConfig::with_workers(4).with_cost(ClusterCostConfig::noiseless()))
    }

    #[test]
    fn chain_distances_are_hop_counts() {
        let g = chain(10);
        let result = ShortestPaths::new(0).run(&engine(), &g);
        for (v, &d) in result.distances.iter().enumerate() {
            assert!((d - v as f64).abs() < 1e-12);
        }
        assert_eq!(result.halt_reason, HaltReason::AllVerticesHalted);
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let el: EdgeList = [(0u32, 1u32), (2, 3)].into_iter().collect();
        let g = CsrGraph::from_edge_list(&el);
        let result = ShortestPaths::new(0).run(&engine(), &g);
        assert_eq!(result.distances[1], 1.0);
        assert!(result.distances[2].is_infinite());
        assert!(result.distances[3].is_infinite());
    }

    #[test]
    fn weighted_edges_are_respected() {
        let mut el = EdgeList::new();
        el.push_weighted(0, 1, 5.0);
        el.push_weighted(0, 2, 1.0);
        el.push_weighted(2, 1, 1.0);
        let g = CsrGraph::from_edge_list(&el);
        let result = ShortestPaths::new(0).run(&engine(), &g);
        // Path 0 -> 2 -> 1 (cost 2) beats the direct edge (cost 5).
        assert!((result.distances[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn matches_bfs_on_unweighted_symmetric_graphs() {
        let base = generate_rmat(&RmatConfig::new(7, 4).with_seed(9));
        let g = CsrGraph::from_edge_list(&base.to_edge_list().to_undirected());
        let result = ShortestPaths::new(0).run(&engine(), &g);
        let bfs = bfs_distances_undirected(&g, 0);
        for v in g.vertices() {
            let d = result.distances[v as usize];
            if bfs[v as usize] == usize::MAX {
                assert!(d.is_infinite());
            } else {
                assert!((d - bfs[v as usize] as f64).abs() < 1e-12, "vertex {v}");
            }
        }
    }
}
