//! PageRank — the paper's constant-per-iteration-runtime algorithm (§4.1).
//!
//! Every superstep every vertex recomputes its rank from the incoming rank
//! transfer and forwards `rank / out_degree` to its out-neighbors, so the
//! message volume — and therefore the per-iteration runtime — is essentially
//! constant across iterations. The algorithm converges when the average
//! absolute rank change per vertex drops below a user threshold `τ`, which the
//! paper typically sets to `τ = ε / N` for a tolerance level `ε`.

use predict_bsp::{Aggregates, BspEngine, ComputeContext, InitContext, VertexProgram};
use predict_graph::{CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Name of the aggregator accumulating the summed absolute rank change.
pub const DELTA_SUM_AGGREGATOR: &str = "pagerank/delta_sum";

/// Name of the aggregator counting the vertices that recomputed their rank in
/// a superstep (the normalizer of the average delta).
pub const VERTEX_COUNT_AGGREGATOR: &str = "pagerank/vertices";

/// Parameters of the PageRank algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageRankParams {
    /// Damping factor `d` (the paper uses 0.85 throughout).
    pub damping: f64,
    /// Convergence threshold `τ`: the run stops once the average absolute
    /// rank change per vertex is below it.
    pub tolerance: f64,
}

impl Default for PageRankParams {
    fn default() -> Self {
        Self {
            damping: 0.85,
            tolerance: 1e-6,
        }
    }
}

impl PageRankParams {
    /// Creates parameters with an explicit threshold `τ`.
    pub fn new(damping: f64, tolerance: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&damping),
            "damping must be in [0, 1), got {damping}"
        );
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        Self { damping, tolerance }
    }

    /// The paper's threshold convention: `τ = ε / N` where `ε` is the
    /// tolerance level (0.01 or 0.001 in the evaluation) and `N` the number of
    /// vertices of the graph the algorithm is tuned for.
    pub fn with_epsilon(epsilon: f64, num_vertices: usize) -> Self {
        Self::new(0.85, epsilon / num_vertices.max(1) as f64)
    }

    /// Returns a copy with a different convergence threshold (used by the
    /// transform function during sample runs).
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }
}

/// The PageRank vertex program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRank {
    /// Algorithm parameters.
    pub params: PageRankParams,
}

impl PageRank {
    /// Creates a PageRank program with the given parameters.
    pub fn new(params: PageRankParams) -> Self {
        Self { params }
    }

    /// Runs PageRank on `graph` and returns the final per-vertex ranks
    /// together with the run profile.
    pub fn run(&self, engine: &BspEngine, graph: &CsrGraph) -> PageRankResult {
        let result = engine.run(graph, self);
        Self::assemble(result)
    }

    /// [`PageRank::run`] against pre-built [`GraphStorage`](predict_bsp::GraphStorage), so repeated
    /// runs over one graph pay shard construction once. Byte-identical to
    /// `run` (the engine's storage contract).
    pub fn run_storage(
        &self,
        engine: &BspEngine,
        storage: &predict_bsp::GraphStorage,
    ) -> PageRankResult {
        let result = engine.run_storage(storage, self);
        Self::assemble(result)
    }

    fn assemble(result: predict_bsp::BspRunResult<f64>) -> PageRankResult {
        PageRankResult {
            ranks: result.values,
            iterations: result.profile.num_iterations(),
            profile: result.profile,
            halt_reason: result.halt_reason,
        }
    }
}

/// Output of a PageRank run.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Final rank of every vertex.
    pub ranks: Vec<f64>,
    /// Number of supersteps executed.
    pub iterations: usize,
    /// Full run profile.
    pub profile: predict_bsp::RunProfile,
    /// Why the run terminated.
    pub halt_reason: predict_bsp::HaltReason,
}

impl VertexProgram for PageRank {
    type VertexValue = f64;
    type Message = f64;

    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn init_vertex(&self, _vertex: VertexId, ctx: &InitContext<'_>) -> f64 {
        1.0 / ctx.num_vertices.max(1) as f64
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, f64, f64>, messages: &[f64]) {
        let n = ctx.num_vertices.max(1) as f64;
        let d = self.params.damping;

        if ctx.superstep > 0 {
            let incoming: f64 = messages.iter().sum();
            let new_rank = (1.0 - d) / n + d * incoming;
            let delta = (new_rank - *ctx.value).abs();
            ctx.aggregate(DELTA_SUM_AGGREGATOR, delta);
            ctx.aggregate(VERTEX_COUNT_AGGREGATOR, 1.0);
            *ctx.value = new_rank;
        }

        // Forward the rank transfer for the next iteration. Dangling vertices
        // (no out-edges) simply retain their rank mass, as in the paper's
        // formulation of equation (1).
        let out_degree = ctx.out_degree();
        if out_degree > 0 {
            let share = *ctx.value / out_degree as f64;
            ctx.send_to_all_neighbors(share);
        }
        // PageRank vertices never vote to halt: every vertex recomputes its
        // rank every superstep until the master detects global convergence,
        // which is what makes this the paper's constant-per-iteration-runtime
        // algorithm (ActVert == TotVert for every iteration).
    }

    fn message_size_bytes(&self, _msg: &f64) -> u64 {
        8
    }

    fn master_halt(&self, superstep: usize, aggregates: &Aggregates) -> bool {
        if superstep == 0 {
            // The first superstep only distributes the initial ranks; there is
            // no delta to compare against the threshold yet.
            return false;
        }
        let delta_sum = aggregates.get_or(DELTA_SUM_AGGREGATOR, f64::INFINITY);
        let avg_delta = delta_sum / self.active_vertex_normalizer(aggregates);
        avg_delta < self.params.tolerance
    }
}

impl PageRank {
    /// The paper normalizes the delta sum by the number of vertices `N`. The
    /// engine does not pass `N` to the master hook, so the program aggregates
    /// it once per superstep through the number of compute invocations, which
    /// for PageRank equals `N` (every vertex is active every superstep).
    fn active_vertex_normalizer(&self, aggregates: &Aggregates) -> f64 {
        aggregates.get_or(VERTEX_COUNT_AGGREGATOR, 0.0).max(1.0)
    }
}

/// Computes the exact average-delta sequence of PageRank on `graph` without
/// the BSP engine — a straightforward reference implementation used in tests
/// to validate the vertex program.
pub fn reference_pagerank(
    graph: &CsrGraph,
    params: &PageRankParams,
    max_iterations: usize,
) -> (Vec<f64>, usize) {
    let n = graph.num_vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let mut ranks = vec![1.0 / n as f64; n];
    for it in 1..=max_iterations {
        let mut incoming = vec![0.0f64; n];
        for v in graph.vertices() {
            let out_degree = graph.out_degree(v);
            if out_degree == 0 {
                continue;
            }
            let share = ranks[v as usize] / out_degree as f64;
            for &u in graph.out_neighbors(v) {
                incoming[u as usize] += share;
            }
        }
        let mut delta_sum = 0.0;
        let mut next = vec![0.0f64; n];
        for v in 0..n {
            next[v] = (1.0 - params.damping) / n as f64 + params.damping * incoming[v];
            delta_sum += (next[v] - ranks[v]).abs();
        }
        ranks = next;
        if delta_sum / (n as f64) < params.tolerance {
            return (ranks, it);
        }
    }
    (ranks, max_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_bsp::{BspConfig, ClusterCostConfig, HaltReason};
    use predict_graph::generators::{complete, cycle, generate_rmat, RmatConfig};
    use predict_graph::EdgeList;

    fn engine() -> BspEngine {
        BspEngine::new(BspConfig::with_workers(4).with_cost(ClusterCostConfig::noiseless()))
    }

    #[test]
    fn ranks_sum_to_approximately_one() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        let pr = PageRank::new(PageRankParams::with_epsilon(0.001, g.num_vertices()));
        let result = pr.run(&engine(), &g);
        let sum: f64 = result.ranks.iter().sum();
        // Dangling vertices retain mass, so the sum stays close to 1 but is
        // not exactly 1; allow a generous band.
        assert!(sum > 0.5 && sum < 1.5, "rank sum {sum} out of range");
    }

    #[test]
    fn converges_via_master_condition() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        let pr = PageRank::new(PageRankParams::with_epsilon(0.01, g.num_vertices()));
        let result = pr.run(&engine(), &g);
        assert_eq!(result.halt_reason, HaltReason::MasterConverged);
        assert!(result.iterations > 1);
    }

    #[test]
    fn symmetric_graph_has_uniform_ranks() {
        let g = complete(10);
        let pr = PageRank::new(PageRankParams::new(0.85, 1e-9));
        let result = pr.run(&engine(), &g);
        for &r in &result.ranks {
            assert!(
                (r - 0.1).abs() < 1e-6,
                "rank {r} should be 0.1 on a complete graph"
            );
        }
    }

    #[test]
    fn cycle_has_uniform_ranks() {
        let g = cycle(20);
        let pr = PageRank::new(PageRankParams::new(0.85, 1e-10));
        let result = pr.run(&engine(), &g);
        for &r in &result.ranks {
            assert!((r - 0.05).abs() < 1e-6);
        }
    }

    #[test]
    fn hub_receives_higher_rank_than_leaves() {
        // Star pointing inward: leaves all point at vertex 0.
        let mut el = EdgeList::new();
        for leaf in 1..50u32 {
            el.push(leaf, 0);
            el.push(0, leaf); // make it strongly connected so mass cycles
        }
        let g = CsrGraph::from_edge_list(&el);
        let pr = PageRank::new(PageRankParams::new(0.85, 1e-9));
        let result = pr.run(&engine(), &g);
        let hub = result.ranks[0];
        let leaf = result.ranks[1];
        assert!(
            hub > leaf * 5.0,
            "hub rank {hub} should dominate leaf rank {leaf}"
        );
    }

    #[test]
    fn matches_reference_implementation() {
        let g = generate_rmat(&RmatConfig::new(7, 4).with_seed(5));
        let params = PageRankParams::with_epsilon(0.001, g.num_vertices());
        let bsp = PageRank::new(params).run(&engine(), &g);
        let (reference, ref_iterations) = reference_pagerank(&g, &params, 500);
        // The BSP run counts superstep 0 (initial distribution) as an
        // iteration, the reference loop does not.
        assert_eq!(bsp.iterations, ref_iterations + 1);
        for (a, b) in bsp.ranks.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-9, "BSP rank {a} != reference {b}");
        }
    }

    #[test]
    fn tighter_tolerance_needs_more_iterations() {
        let g = generate_rmat(&RmatConfig::new(8, 6).with_seed(2));
        let loose =
            PageRank::new(PageRankParams::with_epsilon(0.01, g.num_vertices())).run(&engine(), &g);
        let tight =
            PageRank::new(PageRankParams::with_epsilon(0.001, g.num_vertices())).run(&engine(), &g);
        assert!(tight.iterations > loose.iterations);
    }

    #[test]
    fn per_iteration_message_volume_is_constant() {
        // The defining property of the paper's "constant runtime" category:
        // message counts do not vary across supersteps (except the last,
        // truncated one).
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(3));
        let pr = PageRank::new(PageRankParams::with_epsilon(0.001, g.num_vertices()));
        let result = pr.run(&engine(), &g);
        let totals = result.profile.per_superstep_totals();
        let first = totals[0].total_messages();
        for t in &totals[..totals.len() - 1] {
            assert_eq!(t.total_messages(), first);
        }
    }

    #[test]
    fn epsilon_constructor_matches_paper_convention() {
        let p = PageRankParams::with_epsilon(0.01, 1000);
        assert!((p.tolerance - 1e-5).abs() < 1e-15);
        assert_eq!(p.damping, 0.85);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn invalid_damping_panics() {
        let _ = PageRankParams::new(1.0, 1e-6);
    }
}
