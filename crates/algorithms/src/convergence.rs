//! Convergence-condition metadata.
//!
//! The transform function of the paper (section 3.2.2) picks its default rule
//! based on whether an algorithm's convergence threshold is *tuned to the size
//! of the input dataset*:
//!
//! * PageRank converges on an absolute aggregate (average rank delta, whose
//!   magnitude scales with `1/N`), so the sample-run threshold must be scaled
//!   by the inverse sampling ratio: `τ_S = τ_G / sr`.
//! * Semi-clustering and top-k ranking converge on a *ratio* of updates,
//!   which is size-invariant, so the threshold is kept: `τ_S = τ_G`.
//!
//! [`ConvergenceKind`] carries this distinction from each algorithm to the
//! transform function.

use serde::{Deserialize, Serialize};

/// Whether an algorithm's convergence threshold is tuned to the dataset size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConvergenceKind {
    /// Convergence compares an absolute aggregate against the threshold
    /// (e.g. PageRank's average delta, which shrinks as `1/N`). The default
    /// transform scales the threshold by `1 / sampling_ratio`.
    AbsoluteAggregate,
    /// Convergence compares a size-invariant ratio against the threshold
    /// (e.g. fraction of updated semi-clusters, fraction of active vertices).
    /// The default transform keeps the threshold unchanged.
    RelativeRatio,
    /// The algorithm runs to a structural fixed point with no tunable
    /// threshold (e.g. connected components). No transform applies.
    FixedPoint,
}

impl ConvergenceKind {
    /// True when the default transform function must scale the convergence
    /// threshold for a sample run.
    pub fn requires_threshold_scaling(&self) -> bool {
        matches!(self, ConvergenceKind::AbsoluteAggregate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_absolute_aggregates_need_scaling() {
        assert!(ConvergenceKind::AbsoluteAggregate.requires_threshold_scaling());
        assert!(!ConvergenceKind::RelativeRatio.requires_threshold_scaling());
        assert!(!ConvergenceKind::FixedPoint.requires_threshold_scaling());
    }
}
