//! The scratch-reuse contract: threading one `SampleScratch` through many
//! draws — across techniques, ratios, seeds and even different graphs — must
//! produce exactly the selections a fresh scratch per draw produces. This is
//! what lets `PredictionSession` reuse one allocation for every sample it
//! draws without any observable effect.

use predict_graph::generators::{
    generate_bipartite, generate_grid_road, generate_rmat, BipartiteConfig, GridRoadConfig,
    RmatConfig,
};
use predict_graph::CsrGraph;
use predict_sampling::{
    BiasedRandomJump, ForestFire, Mhrw, RandomEdge, RandomJump, RandomNode, SampleScratch, Sampler,
};

fn samplers() -> Vec<Box<dyn Sampler>> {
    vec![
        Box::new(BiasedRandomJump::default()),
        Box::new(RandomJump::default()),
        Box::new(Mhrw::default()),
        Box::new(ForestFire::default()),
        Box::new(RandomNode),
        Box::new(RandomEdge),
    ]
}

fn graphs() -> Vec<CsrGraph> {
    vec![
        generate_rmat(&RmatConfig::new(10, 8).with_seed(5)),
        generate_grid_road(&GridRoadConfig::new(24, 24).with_seed(5)),
        generate_bipartite(&BipartiteConfig::new(600, 120, 4000).with_seed(5)),
    ]
}

#[test]
fn reused_scratch_matches_fresh_scratch_across_draws() {
    // One dirty scratch threaded through every (graph, sampler, ratio, seed)
    // combination, in an order that changes the universe size between draws.
    let mut scratch = SampleScratch::new();
    for graph in &graphs() {
        for sampler in samplers() {
            for (ratio, seed) in [(0.05, 1u64), (0.2, 7), (0.5, 1), (0.05, 2)] {
                let reused = sampler.sample_vertices_with(graph, ratio, seed, &mut scratch);
                let fresh = sampler.sample_vertices(graph, ratio, seed);
                assert_eq!(
                    reused,
                    fresh,
                    "{} at ratio {ratio} seed {seed} diverged with a reused scratch",
                    sampler.name()
                );
            }
        }
    }
}

#[test]
fn sample_with_matches_sample() {
    let graph = generate_rmat(&RmatConfig::new(9, 6).with_seed(3));
    let mut scratch = SampleScratch::new();
    for sampler in samplers() {
        // Dirty the scratch on a different graph first.
        let other = generate_grid_road(&GridRoadConfig::new(40, 10).with_seed(1));
        let _ = sampler.sample_vertices_with(&other, 0.3, 9, &mut scratch);

        let with = sampler.sample_with(&graph, 0.1, 11, &mut scratch);
        let without = sampler.sample(&graph, 0.1, 11);
        assert_eq!(with.technique, without.technique);
        assert_eq!(with.achieved_ratio, without.achieved_ratio);
        assert_eq!(with.graph.num_vertices(), without.graph.num_vertices());
        assert_eq!(with.graph.num_edges(), without.graph.num_edges());
        for v in with.graph.vertices() {
            assert_eq!(
                with.graph.out_neighbors(v),
                without.graph.out_neighbors(v),
                "{} subgraph adjacency diverged",
                sampler.name()
            );
        }
    }
}
