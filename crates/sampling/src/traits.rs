//! The sampling-technique abstraction used by PREDIcT sample runs.
//!
//! A sampling technique selects a set of vertices from the full graph; the
//! sample *graph* the algorithm is then executed on is the subgraph induced by
//! that set (section 3.2.1 of the paper). All techniques are deterministic
//! given a seed so experiments are reproducible.

use crate::visited::SampleScratch;
use predict_graph::{induced_subgraph, CsrGraph, SubgraphMapping, VertexId};
use serde::{Deserialize, Serialize};

/// A vertex sample of a graph: the induced subgraph plus the mapping back to
/// the original vertex ids and the ratio that was requested.
///
/// `Deserialize` is hand-written (see [`technique_from_name`]) because
/// `technique` is a `&'static str`: the persistent artifact store
/// round-trips samples through serialization, and the stored name is mapped
/// back onto the canonical static name of a known technique. A sample
/// recorded by an unknown (out-of-tree) technique fails deserialization,
/// which the store treats as a miss — the sample is recomputed, never
/// mislabeled.
#[derive(Debug, Clone, Serialize)]
pub struct GraphSample {
    /// The induced subgraph over the selected vertices (dense ids).
    pub graph: CsrGraph,
    /// Mapping between sample ids and original ids.
    pub mapping: SubgraphMapping,
    /// The sampling ratio that was requested (fraction of vertices).
    pub requested_ratio: f64,
    /// The ratio that was actually achieved (`sample vertices / full
    /// vertices`); equals the request up to rounding.
    pub achieved_ratio: f64,
    /// Name of the technique that produced the sample.
    pub technique: &'static str,
}

impl GraphSample {
    /// Vertex scaling factor `|V_G| / |V_S|` used by the extrapolator.
    pub fn vertex_scale_factor(&self, full: &CsrGraph) -> f64 {
        if self.graph.num_vertices() == 0 {
            return 0.0;
        }
        full.num_vertices() as f64 / self.graph.num_vertices() as f64
    }

    /// Edge scaling factor `|E_G| / |E_S|` used by the extrapolator.
    pub fn edge_scale_factor(&self, full: &CsrGraph) -> f64 {
        if self.graph.num_edges() == 0 {
            return 0.0;
        }
        full.num_edges() as f64 / self.graph.num_edges() as f64
    }
}

/// Maps a stored technique name back onto the canonical `&'static str` of a
/// known in-tree technique, or `None` for out-of-tree names.
///
/// Keep in sync with the [`Sampler::name`] implementations in this crate;
/// adding a technique without registering it here makes its persisted
/// samples deserialize as store misses (safe, but wasteful).
pub fn technique_from_name(name: &str) -> Option<&'static str> {
    ["BRJ", "RJ", "RN", "RE", "FF", "MHRW"]
        .into_iter()
        .find(|&t| t == name)
}

impl Deserialize for GraphSample {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| serde::Error::msg("GraphSample: expected a map"))?;
        let technique_name = String::deserialize_value(serde::get_field(entries, "technique")?)?;
        let technique = technique_from_name(&technique_name).ok_or_else(|| {
            serde::Error::msg(format!("GraphSample: unknown technique `{technique_name}`"))
        })?;
        Ok(GraphSample {
            graph: CsrGraph::deserialize_value(serde::get_field(entries, "graph")?)?,
            mapping: SubgraphMapping::deserialize_value(serde::get_field(entries, "mapping")?)?,
            requested_ratio: f64::deserialize_value(serde::get_field(entries, "requested_ratio")?)?,
            achieved_ratio: f64::deserialize_value(serde::get_field(entries, "achieved_ratio")?)?,
            technique,
        })
    }
}

/// A graph sampling technique.
///
/// Implementations must be deterministic for a fixed `(graph, ratio, seed)`
/// triple; all randomness must flow from the seed. Samplers are `Send + Sync`
/// so one instance can be shared behind an `Arc` by concurrent prediction
/// sessions — every implementation in this crate is a plain configuration
/// struct with no interior mutability.
pub trait Sampler: Send + Sync {
    /// Short name of the technique (used in reports and plots, e.g. "BRJ").
    fn name(&self) -> &'static str;

    /// Selects approximately `ratio * num_vertices` vertices from `graph`,
    /// using `scratch` for all per-draw working memory (visited bitset,
    /// vertex buffers).
    ///
    /// The returned ids are unique and refer to the original graph. The
    /// requested ratio is clamped to `[0, 1]`. Implementations must reset
    /// whatever scratch state they use, so passing a scratch left over from
    /// any previous draw produces exactly the same selection as a fresh one —
    /// the scratch only amortizes allocations across the repeated draws of a
    /// prediction session.
    ///
    /// # Examples
    ///
    /// Drawing repeatedly through one scratch: allocations are reused, and a
    /// dirty scratch never changes what is drawn:
    ///
    /// ```
    /// use predict_graph::generators::{generate_rmat, RmatConfig};
    /// use predict_sampling::{BiasedRandomJump, SampleScratch, Sampler};
    ///
    /// let graph = generate_rmat(&RmatConfig::new(10, 8).with_seed(1));
    /// let sampler = BiasedRandomJump::default();
    ///
    /// let mut scratch = SampleScratch::new();
    /// let first = sampler.sample_vertices_with(&graph, 0.1, 42, &mut scratch);
    /// assert_eq!(first.len(), (graph.num_vertices() as f64 * 0.1).round() as usize);
    ///
    /// // Same (ratio, seed) through the now-dirty scratch: same selection.
    /// let again = sampler.sample_vertices_with(&graph, 0.1, 42, &mut scratch);
    /// assert_eq!(first, again);
    /// // And identical to a fresh-scratch draw.
    /// assert_eq!(first, sampler.sample_vertices(&graph, 0.1, 42));
    /// ```
    fn sample_vertices_with(
        &self,
        graph: &CsrGraph,
        ratio: f64,
        seed: u64,
        scratch: &mut SampleScratch,
    ) -> Vec<VertexId>;

    /// [`Sampler::sample_vertices_with`] with a fresh throwaway scratch.
    fn sample_vertices(&self, graph: &CsrGraph, ratio: f64, seed: u64) -> Vec<VertexId> {
        self.sample_vertices_with(graph, ratio, seed, &mut SampleScratch::new())
    }

    /// Selects vertices and extracts the induced sample graph, reusing
    /// `scratch` for the selection walk.
    fn sample_with(
        &self,
        graph: &CsrGraph,
        ratio: f64,
        seed: u64,
        scratch: &mut SampleScratch,
    ) -> GraphSample {
        let ratio = ratio.clamp(0.0, 1.0);
        let vertices = self.sample_vertices_with(graph, ratio, seed, scratch);
        let (sub, mapping) = induced_subgraph(graph, &vertices);
        let achieved_ratio = if graph.num_vertices() == 0 {
            0.0
        } else {
            sub.num_vertices() as f64 / graph.num_vertices() as f64
        };
        GraphSample {
            graph: sub,
            mapping,
            requested_ratio: ratio,
            achieved_ratio,
            technique: self.name(),
        }
    }

    /// [`Sampler::sample_with`] with a fresh throwaway scratch.
    fn sample(&self, graph: &CsrGraph, ratio: f64, seed: u64) -> GraphSample {
        self.sample_with(graph, ratio, seed, &mut SampleScratch::new())
    }
}

/// Number of vertices a sampler should select for a given ratio: at least one
/// vertex for any positive ratio on a non-empty graph, never more than the
/// graph has.
pub fn target_sample_size(num_vertices: usize, ratio: f64) -> usize {
    if num_vertices == 0 || ratio <= 0.0 {
        return 0;
    }
    let raw = (num_vertices as f64 * ratio).round() as usize;
    raw.clamp(1, num_vertices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_graph::generators::{generate_rmat, RmatConfig};

    struct FirstK;
    impl Sampler for FirstK {
        fn name(&self) -> &'static str {
            "FirstK"
        }
        fn sample_vertices_with(
            &self,
            graph: &CsrGraph,
            ratio: f64,
            _seed: u64,
            _scratch: &mut SampleScratch,
        ) -> Vec<VertexId> {
            let k = target_sample_size(graph.num_vertices(), ratio);
            (0..k as VertexId).collect()
        }
    }

    #[test]
    fn target_sample_size_basic() {
        assert_eq!(target_sample_size(100, 0.1), 10);
        assert_eq!(target_sample_size(100, 0.0), 0);
        assert_eq!(target_sample_size(0, 0.5), 0);
        assert_eq!(target_sample_size(100, 1.0), 100);
        // Any positive ratio selects at least one vertex.
        assert_eq!(target_sample_size(100, 0.0001), 1);
        // Ratios above 1.0 are capped by the caller (sample clamps), but the
        // size helper still never exceeds the vertex count.
        assert_eq!(target_sample_size(10, 5.0), 10);
    }

    #[test]
    fn sample_builds_induced_subgraph_and_ratios() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        let s = FirstK.sample(&g, 0.25, 0);
        assert_eq!(s.graph.num_vertices(), 64);
        assert!((s.achieved_ratio - 0.25).abs() < 1e-9);
        assert_eq!(s.requested_ratio, 0.25);
        assert_eq!(s.technique, "FirstK");
        assert!((s.vertex_scale_factor(&g) - 4.0).abs() < 1e-9);
        assert!(s.edge_scale_factor(&g) >= 1.0);
    }

    #[test]
    fn sample_clamps_ratio() {
        let g = generate_rmat(&RmatConfig::new(6, 4).with_seed(1));
        let s = FirstK.sample(&g, 7.5, 0);
        assert_eq!(s.graph.num_vertices(), g.num_vertices());
        assert_eq!(s.requested_ratio, 1.0);
    }

    #[test]
    fn empty_graph_sample_is_empty() {
        let g = CsrGraph::from_edges(0, &[]);
        let s = FirstK.sample(&g, 0.5, 0);
        assert_eq!(s.graph.num_vertices(), 0);
        assert_eq!(s.achieved_ratio, 0.0);
        assert_eq!(s.vertex_scale_factor(&g), 0.0);
        assert_eq!(s.edge_scale_factor(&g), 0.0);
    }
}
