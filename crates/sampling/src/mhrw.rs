//! Metropolis–Hastings Random Walk (MHRW) sampling.
//!
//! MHRW (Gjoka et al., INFOCOM 2010 — reference \[15\] of the paper) is a random
//! walk whose transition probabilities are corrected with a
//! Metropolis–Hastings acceptance step so that the stationary distribution is
//! *uniform* over vertices rather than proportional to degree. The paper uses
//! it in the Figure 9 sensitivity analysis as the "remove all bias" end of the
//! spectrum, contrasted with RJ (inherent random-walk bias towards high-degree
//! vertices) and BRJ (explicit bias towards high out-degree vertices).

use crate::random_jump::DEFAULT_RESTART_PROBABILITY;
use crate::traits::{target_sample_size, Sampler};
use crate::visited::{SampleScratch, VisitedSet};
use predict_graph::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Metropolis–Hastings Random Walk sampler.
///
/// The walk moves over the undirected view of the graph (out- and
/// in-neighbors) so it cannot get stuck at sink vertices; a proposed move from
/// `v` to `w` is accepted with probability `min(1, deg(v) / deg(w))`. With
/// probability `restart_probability` the walk jumps to a fresh uniformly
/// random vertex, mirroring the restart behaviour of RJ/BRJ so the three
/// techniques differ only in their bias.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mhrw {
    /// Probability of restarting the walk from a uniformly random vertex.
    pub restart_probability: f64,
}

impl Default for Mhrw {
    fn default() -> Self {
        Self {
            restart_probability: DEFAULT_RESTART_PROBABILITY,
        }
    }
}

impl Mhrw {
    /// Creates an MHRW sampler with the given restart probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < restart_probability <= 1`.
    pub fn new(restart_probability: f64) -> Self {
        assert!(
            restart_probability > 0.0 && restart_probability <= 1.0,
            "restart probability must be in (0, 1], got {restart_probability}"
        );
        Self {
            restart_probability,
        }
    }
}

fn undirected_degree(graph: &CsrGraph, v: VertexId) -> usize {
    graph.out_degree(v) + graph.in_degree(v)
}

fn undirected_neighbor(graph: &CsrGraph, v: VertexId, idx: usize) -> VertexId {
    let out = graph.out_neighbors(v);
    if idx < out.len() {
        out[idx]
    } else {
        graph.in_neighbors(v)[idx - out.len()]
    }
}

impl Sampler for Mhrw {
    fn name(&self) -> &'static str {
        "MHRW"
    }

    fn sample_vertices_with(
        &self,
        graph: &CsrGraph,
        ratio: f64,
        seed: u64,
        scratch: &mut SampleScratch,
    ) -> Vec<VertexId> {
        let target = target_sample_size(graph.num_vertices(), ratio);
        if target == 0 {
            return Vec::new();
        }
        let n = graph.num_vertices();
        let mut rng = StdRng::seed_from_u64(seed);
        let SampleScratch { visited, buf, .. } = scratch;
        visited.reset(n);
        let mut picked = Vec::with_capacity(target);
        let visit = |v: VertexId, visited: &mut VisitedSet, picked: &mut Vec<VertexId>| {
            if visited.insert(v) {
                picked.push(v);
            }
        };

        let mut current = rng.gen_range(0..n) as VertexId;
        visit(current, visited, &mut picked);

        let max_steps = n.saturating_mul(400).max(10_000);
        let mut steps = 0usize;
        while picked.len() < target && steps < max_steps {
            steps += 1;
            let deg_v = undirected_degree(graph, current);
            if deg_v == 0 || rng.gen_bool(self.restart_probability) {
                current = rng.gen_range(0..n) as VertexId;
                visit(current, visited, &mut picked);
                continue;
            }
            let proposal = undirected_neighbor(graph, current, rng.gen_range(0..deg_v));
            let deg_w = undirected_degree(graph, proposal).max(1);
            // Metropolis–Hastings acceptance: accept with min(1, deg(v)/deg(w)).
            let accept = deg_w <= deg_v || rng.gen_bool(deg_v as f64 / deg_w as f64);
            if accept {
                current = proposal;
                visit(current, visited, &mut picked);
            }
        }

        // Fill up from the unvisited remainder if the walk stalled.
        if picked.len() < target {
            let remaining = buf;
            remaining.clear();
            remaining.extend((0..n as VertexId).filter(|&v| !visited.contains(v)));
            while picked.len() < target && !remaining.is_empty() {
                let idx = rng.gen_range(0..remaining.len());
                let v = remaining.swap_remove(idx);
                visit(v, visited, &mut picked);
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biased_random_jump::BiasedRandomJump;
    use predict_graph::generators::{generate_rmat, star, RmatConfig};
    use std::collections::HashSet;

    #[test]
    fn respects_target_size() {
        let g = generate_rmat(&RmatConfig::new(9, 6).with_seed(3));
        let s = Mhrw::default().sample_vertices(&g, 0.1, 7);
        assert_eq!(s.len(), (g.num_vertices() as f64 * 0.1).round() as usize);
    }

    #[test]
    fn vertices_are_unique() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        let s = Mhrw::default().sample_vertices(&g, 0.4, 11);
        let set: HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), s.len());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        assert_eq!(
            Mhrw::default().sample_vertices(&g, 0.2, 5),
            Mhrw::default().sample_vertices(&g, 0.2, 5)
        );
    }

    #[test]
    fn mhrw_selects_fewer_hubs_than_brj() {
        // MHRW removes the degree bias, so the average out-degree of its
        // sample should be below BRJ's (which deliberately targets hubs).
        let g = generate_rmat(&RmatConfig::new(11, 8).with_seed(21));
        let avg_degree = |vs: &[VertexId]| {
            vs.iter().map(|&v| g.out_degree(v)).sum::<usize>() as f64 / vs.len() as f64
        };
        let mhrw = avg_degree(&Mhrw::default().sample_vertices(&g, 0.1, 3));
        let brj = avg_degree(&BiasedRandomJump::default().sample_vertices(&g, 0.1, 3));
        assert!(
            mhrw < brj,
            "MHRW sample avg degree {mhrw} should be below BRJ's {brj}"
        );
    }

    #[test]
    fn handles_star_graph() {
        let g = star(300);
        let s = Mhrw::default().sample_vertices(&g, 0.3, 2);
        assert_eq!(s.len(), 90);
    }

    #[test]
    fn zero_ratio_is_empty() {
        let g = generate_rmat(&RmatConfig::new(6, 4).with_seed(2));
        assert!(Mhrw::default().sample_vertices(&g, 0.0, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "restart probability")]
    fn invalid_probability_panics() {
        let _ = Mhrw::new(1.5);
    }
}
