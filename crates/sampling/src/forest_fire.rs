//! Forest Fire sampling.
//!
//! Forest Fire (Leskovec & Faloutsos, KDD 2006) "burns" outward from a random
//! seed: the fire at a vertex spreads to a geometrically distributed number of
//! its not-yet-burned out-neighbors, which are burned recursively. When the
//! fire dies out a new seed is ignited. The paper lists Forest Fire among the
//! techniques whose D-statistic scores are comparable to Random Jump; it is
//! provided here as an additional point of comparison for the sensitivity
//! analysis and the sampler-quality test-suite.

use crate::traits::{target_sample_size, Sampler};
use crate::visited::SampleScratch;
use predict_graph::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Forest Fire sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestFire {
    /// Forward-burning probability `p_f`: the number of out-neighbors burned
    /// from each vertex is geometrically distributed with mean
    /// `p_f / (1 - p_f)`.
    pub forward_probability: f64,
}

impl Default for ForestFire {
    fn default() -> Self {
        // The value recommended by Leskovec & Faloutsos.
        Self {
            forward_probability: 0.7,
        }
    }
}

impl ForestFire {
    /// Creates a Forest Fire sampler with the given forward-burning
    /// probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < forward_probability < 1`.
    pub fn new(forward_probability: f64) -> Self {
        assert!(
            forward_probability > 0.0 && forward_probability < 1.0,
            "forward probability must be in (0, 1), got {forward_probability}"
        );
        Self {
            forward_probability,
        }
    }
}

impl Sampler for ForestFire {
    fn name(&self) -> &'static str {
        "FF"
    }

    fn sample_vertices_with(
        &self,
        graph: &CsrGraph,
        ratio: f64,
        seed: u64,
        scratch: &mut SampleScratch,
    ) -> Vec<VertexId> {
        let target = target_sample_size(graph.num_vertices(), ratio);
        if target == 0 {
            return Vec::new();
        }
        let n = graph.num_vertices();
        let mut rng = StdRng::seed_from_u64(seed);
        let SampleScratch {
            visited: burned,
            buf: unburned,
            queue,
        } = scratch;
        burned.reset(n);
        queue.clear();
        let mut picked: Vec<VertexId> = Vec::with_capacity(target);

        while picked.len() < target {
            // Ignite a new fire at an unburned vertex chosen uniformly.
            let mut ignite = rng.gen_range(0..n) as VertexId;
            let mut attempts = 0;
            while burned.contains(ignite) && attempts < 64 {
                ignite = rng.gen_range(0..n) as VertexId;
                attempts += 1;
            }
            if burned.contains(ignite) {
                // Densely burned already: fall back to a linear scan.
                match (0..n as VertexId).find(|&v| !burned.contains(v)) {
                    Some(v) => ignite = v,
                    None => break,
                }
            }
            burned.insert(ignite);
            picked.push(ignite);
            queue.clear();
            queue.push_back(ignite);

            while let Some(v) = queue.pop_front() {
                if picked.len() >= target {
                    break;
                }
                // Geometric number of neighbors to burn: keep burning while a
                // biased coin keeps coming up heads.
                unburned.clear();
                unburned.extend(
                    graph
                        .out_neighbors(v)
                        .iter()
                        .copied()
                        .filter(|&u| !burned.contains(u)),
                );
                while !unburned.is_empty() && rng.gen_bool(self.forward_probability) {
                    let idx = rng.gen_range(0..unburned.len());
                    let u = unburned.swap_remove(idx);
                    burned.insert(u);
                    picked.push(u);
                    queue.push_back(u);
                    if picked.len() >= target {
                        break;
                    }
                }
            }
        }
        picked.truncate(target);
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_graph::generators::{chain, generate_rmat, RmatConfig};
    use std::collections::HashSet;

    #[test]
    fn respects_target_size() {
        let g = generate_rmat(&RmatConfig::new(9, 6).with_seed(3));
        let s = ForestFire::default().sample_vertices(&g, 0.1, 7);
        assert_eq!(s.len(), (g.num_vertices() as f64 * 0.1).round() as usize);
    }

    #[test]
    fn vertices_are_unique() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        let s = ForestFire::default().sample_vertices(&g, 0.5, 11);
        let set: HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), s.len());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        assert_eq!(
            ForestFire::default().sample_vertices(&g, 0.2, 5),
            ForestFire::default().sample_vertices(&g, 0.2, 5)
        );
    }

    #[test]
    fn full_ratio_burns_everything() {
        let g = generate_rmat(&RmatConfig::new(7, 4).with_seed(2));
        let s = ForestFire::default().sample_vertices(&g, 1.0, 1);
        assert_eq!(s.len(), g.num_vertices());
    }

    #[test]
    fn works_on_chains() {
        let g = chain(100);
        let s = ForestFire::default().sample_vertices(&g, 0.4, 9);
        assert_eq!(s.len(), 40);
    }

    #[test]
    #[should_panic(expected = "forward probability")]
    fn invalid_probability_panics() {
        let _ = ForestFire::new(1.0);
    }
}
