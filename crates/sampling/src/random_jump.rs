//! Random Jump (RJ) sampling.
//!
//! Random Jump is the technique the paper adopts from Leskovec & Faloutsos
//! ("Sampling from Large Graphs", KDD 2006) as its starting point: it performs
//! random walks over out-edges and, with probability `p` at every step, ends
//! the current walk and restarts from a *new* uniformly random seed vertex.
//! Jumping avoids getting stuck in isolated regions while the walk itself
//! preserves connectivity inside each walk.

use crate::traits::{target_sample_size, Sampler};
use crate::visited::{SampleScratch, VisitedSet};
use predict_graph::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default restart ("jump") probability used by the paper (section 5.3).
pub const DEFAULT_RESTART_PROBABILITY: f64 = 0.15;

/// Random Jump sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomJump {
    /// Probability of ending the current walk at each step and jumping to a
    /// fresh uniformly random seed vertex.
    pub restart_probability: f64,
}

impl Default for RandomJump {
    fn default() -> Self {
        Self {
            restart_probability: DEFAULT_RESTART_PROBABILITY,
        }
    }
}

impl RandomJump {
    /// Creates a Random Jump sampler with the given restart probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < restart_probability <= 1`.
    pub fn new(restart_probability: f64) -> Self {
        assert!(
            restart_probability > 0.0 && restart_probability <= 1.0,
            "restart probability must be in (0, 1], got {restart_probability}"
        );
        Self {
            restart_probability,
        }
    }
}

impl Sampler for RandomJump {
    fn name(&self) -> &'static str {
        "RJ"
    }

    fn sample_vertices_with(
        &self,
        graph: &CsrGraph,
        ratio: f64,
        seed: u64,
        scratch: &mut SampleScratch,
    ) -> Vec<VertexId> {
        let target = target_sample_size(graph.num_vertices(), ratio);
        let mut rng = StdRng::seed_from_u64(seed);
        walk_until(
            graph,
            target,
            self.restart_probability,
            default_step_budget(graph),
            &mut rng,
            scratch,
            |rng, graph| rng.gen_range(0..graph.num_vertices()) as VertexId,
        )
    }
}

/// The default walk step budget: a hard cap on the number of steps so that
/// pathological graphs (e.g. a single giant sink) cannot loop forever. The
/// cap is far above what any real walk on a hub-bearing graph needs; walks
/// that exhaust it fall back to the uniform fill.
pub(crate) fn default_step_budget(graph: &CsrGraph) -> usize {
    graph
        .num_vertices()
        .saturating_mul(200)
        .max(graph.num_edges().saturating_mul(4))
        .max(10_000)
}

/// Runs restart-based random walks over out-edges until `target` distinct
/// vertices have been visited or `max_steps` walk steps were taken, using
/// `pick_seed` to choose the start of every new walk. Shared by Random Jump
/// and Biased Random Jump (which passes a degree-aware budget). All per-walk
/// state lives in `scratch` (reset here), so repeated draws reuse one
/// allocation.
pub(crate) fn walk_until(
    graph: &CsrGraph,
    target: usize,
    restart_probability: f64,
    max_steps: usize,
    rng: &mut StdRng,
    scratch: &mut SampleScratch,
    mut pick_seed: impl FnMut(&mut StdRng, &CsrGraph) -> VertexId,
) -> Vec<VertexId> {
    if target == 0 || graph.num_vertices() == 0 {
        return Vec::new();
    }

    let SampleScratch { visited, buf, .. } = scratch;
    visited.reset(graph.num_vertices());
    let mut picked: Vec<VertexId> = Vec::with_capacity(target);
    let visit = |v: VertexId, visited: &mut VisitedSet, picked: &mut Vec<VertexId>| {
        if visited.insert(v) {
            picked.push(v);
        }
    };

    let mut current = pick_seed(rng, graph);
    visit(current, visited, &mut picked);

    let mut steps = 0usize;

    while picked.len() < target && steps < max_steps {
        steps += 1;
        let nbrs = graph.out_neighbors(current);
        let jump = nbrs.is_empty() || rng.gen_bool(restart_probability);
        current = if jump {
            pick_seed(rng, graph)
        } else {
            nbrs[rng.gen_range(0..nbrs.len())]
        };
        visit(current, visited, &mut picked);
    }

    // If the walk stalled (graph with many unreachable vertices), fill up the
    // remainder uniformly at random so the requested ratio is honoured.
    if picked.len() < target {
        let remaining = buf;
        remaining.clear();
        remaining.extend((0..graph.num_vertices() as VertexId).filter(|&v| !visited.contains(v)));
        while picked.len() < target && !remaining.is_empty() {
            let idx = rng.gen_range(0..remaining.len());
            let v = remaining.swap_remove(idx);
            visit(v, visited, &mut picked);
        }
    }

    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_graph::generators::{chain, generate_rmat, star, RmatConfig};
    use std::collections::HashSet;

    #[test]
    fn respects_target_size() {
        let g = generate_rmat(&RmatConfig::new(9, 6).with_seed(3));
        let s = RandomJump::default().sample_vertices(&g, 0.1, 7);
        assert_eq!(s.len(), (g.num_vertices() as f64 * 0.1).round() as usize);
    }

    #[test]
    fn selected_vertices_are_unique_and_in_range() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        let s = RandomJump::default().sample_vertices(&g, 0.3, 42);
        let set: HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), s.len());
        assert!(s.iter().all(|&v| (v as usize) < g.num_vertices()));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        let a = RandomJump::default().sample_vertices(&g, 0.2, 5);
        let b = RandomJump::default().sample_vertices(&g, 0.2, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let g = generate_rmat(&RmatConfig::new(9, 4).with_seed(1));
        let a = RandomJump::default().sample_vertices(&g, 0.1, 5);
        let b = RandomJump::default().sample_vertices(&g, 0.1, 6);
        assert_ne!(a, b);
    }

    #[test]
    fn full_ratio_selects_everything() {
        let g = generate_rmat(&RmatConfig::new(7, 4).with_seed(2));
        let s = RandomJump::default().sample_vertices(&g, 1.0, 1);
        assert_eq!(s.len(), g.num_vertices());
    }

    #[test]
    fn handles_dead_end_heavy_graphs() {
        // A star pointing outward: every walk immediately dead-ends at a leaf.
        let g = star(500);
        let s = RandomJump::default().sample_vertices(&g, 0.5, 3);
        assert_eq!(s.len(), 250);
    }

    #[test]
    fn handles_chain() {
        let g = chain(200);
        let s = RandomJump::default().sample_vertices(&g, 0.25, 3);
        assert_eq!(s.len(), 50);
    }

    #[test]
    fn zero_ratio_selects_nothing() {
        let g = generate_rmat(&RmatConfig::new(6, 4).with_seed(2));
        assert!(RandomJump::default().sample_vertices(&g, 0.0, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "restart probability")]
    fn invalid_probability_panics() {
        let _ = RandomJump::new(0.0);
    }
}
