//! Sample quality evaluation.
//!
//! Section 3.2.1 of the paper lists the graph properties a sample must
//! preserve for the PREDIcT methodology to work: connectivity, in/out degree
//! proportionality and effective diameter. [`SampleQualityReport`] measures
//! how well a sample preserves each of them relative to the full graph, and
//! produces a single score that can be used to rank sampling techniques (as
//! the paper ranks BRJ / RJ / MHRW in Figure 9 and Leskovec & Faloutsos rank
//! techniques by D-statistic).

use crate::traits::{GraphSample, Sampler};
use predict_graph::dstat::DStatReport;
use predict_graph::properties::GraphProperties;
use predict_graph::CsrGraph;

/// How well a sample graph preserves the properties the paper's methodology
/// relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleQualityReport {
    /// Name of the sampling technique that produced the sample.
    pub technique: &'static str,
    /// Sampling ratio that was achieved.
    pub ratio: f64,
    /// Kolmogorov–Smirnov D-statistics between degree distributions.
    pub dstat: DStatReport,
    /// `sample effective diameter / full effective diameter` (1.0 = preserved).
    pub effective_diameter_ratio: f64,
    /// `sample clustering coefficient / full clustering coefficient`
    /// (1.0 = preserved; may exceed 1).
    pub clustering_ratio: f64,
    /// Fraction of the sample's vertices inside its largest weakly connected
    /// component (connectivity requirement).
    pub largest_wcc_fraction: f64,
    /// `sample largest-WCC fraction / full largest-WCC fraction`: 1.0 means
    /// the sample is exactly as connected as the full graph (which may itself
    /// contain isolated vertices).
    pub connectivity_ratio: f64,
    /// `sample in/out degree ratio / full in/out degree ratio`.
    pub in_out_degree_ratio_ratio: f64,
    /// Ratio of the sample's average degree to the full graph's (how much
    /// density was lost by induced-subgraph extraction).
    pub density_ratio: f64,
}

impl SampleQualityReport {
    /// Evaluates `sample` against the full graph it was drawn from.
    ///
    /// `seed` controls the deterministic property estimators.
    pub fn evaluate(full: &CsrGraph, sample: &GraphSample, seed: u64) -> Self {
        let full_props = GraphProperties::analyze(full, seed);
        let sample_props = GraphProperties::analyze(&sample.graph, seed);
        Self::from_properties(
            sample.technique,
            sample.achieved_ratio,
            full,
            sample,
            &full_props,
            &sample_props,
        )
    }

    /// Evaluates a sample when the full graph's properties have already been
    /// computed (avoids re-analyzing the full graph for every sample in a
    /// sweep).
    pub fn evaluate_with_full_properties(
        full: &CsrGraph,
        full_props: &GraphProperties,
        sample: &GraphSample,
        seed: u64,
    ) -> Self {
        let sample_props = GraphProperties::analyze(&sample.graph, seed);
        Self::from_properties(
            sample.technique,
            sample.achieved_ratio,
            full,
            sample,
            full_props,
            &sample_props,
        )
    }

    fn from_properties(
        technique: &'static str,
        ratio: f64,
        full: &CsrGraph,
        sample: &GraphSample,
        full_props: &GraphProperties,
        sample_props: &GraphProperties,
    ) -> Self {
        let safe_ratio = |num: f64, den: f64| if den == 0.0 { 1.0 } else { num / den };
        Self {
            technique,
            ratio,
            dstat: DStatReport::compare(full, &sample.graph),
            effective_diameter_ratio: safe_ratio(
                sample_props.effective_diameter,
                full_props.effective_diameter,
            ),
            clustering_ratio: safe_ratio(
                sample_props.avg_clustering_coefficient,
                full_props.avg_clustering_coefficient,
            ),
            largest_wcc_fraction: sample_props.largest_wcc_fraction,
            connectivity_ratio: safe_ratio(
                sample_props.largest_wcc_fraction,
                full_props.largest_wcc_fraction,
            ),
            in_out_degree_ratio_ratio: safe_ratio(
                sample_props.in_out_degree_ratio,
                full_props.in_out_degree_ratio,
            ),
            density_ratio: safe_ratio(sample_props.avg_out_degree, full_props.avg_out_degree),
        }
    }

    /// Single-number quality score in `[0, +inf)`, lower is better. Combines
    /// the degree D-statistic, how far the effective diameter drifted, and how
    /// much connectivity was lost relative to the full graph.
    pub fn score(&self) -> f64 {
        let diameter_drift = (self.effective_diameter_ratio - 1.0).abs();
        let fragmentation = (1.0 - self.connectivity_ratio).max(0.0);
        self.dstat.mean_degree_dstat() + diameter_drift + fragmentation
    }
}

/// Evaluates several sampling techniques on the same graph at the same ratio
/// and returns the reports sorted by [`SampleQualityReport::score`]
/// (best technique first). This reproduces the apparatus behind the paper's
/// sampler-sensitivity discussion.
pub fn rank_samplers(
    graph: &CsrGraph,
    samplers: &[&dyn Sampler],
    ratio: f64,
    seed: u64,
) -> Vec<SampleQualityReport> {
    let full_props = GraphProperties::analyze(graph, seed);
    // One scratch serves every technique in the comparison.
    let mut scratch = crate::visited::SampleScratch::new();
    let mut reports: Vec<SampleQualityReport> = samplers
        .iter()
        .map(|s| {
            let sample = s.sample_with(graph, ratio, seed, &mut scratch);
            SampleQualityReport::evaluate_with_full_properties(graph, &full_props, &sample, seed)
        })
        .collect();
    reports.sort_by(|a, b| a.score().partial_cmp(&b.score()).unwrap());
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biased_random_jump::BiasedRandomJump;
    use crate::random_node::RandomNode;
    use predict_graph::generators::{generate_rmat, RmatConfig};

    #[test]
    fn full_sample_has_perfect_quality() {
        let g = generate_rmat(&RmatConfig::new(9, 6).with_seed(3));
        let sample = BiasedRandomJump::default().sample(&g, 1.0, 1);
        let report = SampleQualityReport::evaluate(&g, &sample, 1);
        assert!(report.dstat.mean_degree_dstat() < 1e-9);
        assert!((report.density_ratio - 1.0).abs() < 1e-9);
        assert!((report.effective_diameter_ratio - 1.0).abs() < 1e-9);
        assert!(report.score() < 0.2);
    }

    #[test]
    fn brj_scores_better_than_random_node() {
        let g = generate_rmat(&RmatConfig::new(11, 8).with_seed(7));
        let brj =
            SampleQualityReport::evaluate(&g, &BiasedRandomJump::default().sample(&g, 0.1, 5), 5);
        let rn = SampleQualityReport::evaluate(&g, &RandomNode.sample(&g, 0.1, 5), 5);
        assert!(
            brj.score() < rn.score(),
            "BRJ score {} should beat RandomNode score {}",
            brj.score(),
            rn.score()
        );
    }

    #[test]
    fn rank_samplers_orders_by_score() {
        let g = generate_rmat(&RmatConfig::new(10, 8).with_seed(7));
        let brj = BiasedRandomJump::default();
        let rn = RandomNode;
        let reports = rank_samplers(&g, &[&rn, &brj], 0.1, 3);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].score() <= reports[1].score());
        assert_eq!(reports[0].technique, "BRJ");
    }

    #[test]
    fn evaluate_with_precomputed_properties_matches_direct_evaluation() {
        let g = generate_rmat(&RmatConfig::new(9, 6).with_seed(3));
        let sample = BiasedRandomJump::default().sample(&g, 0.2, 9);
        let direct = SampleQualityReport::evaluate(&g, &sample, 9);
        let props = GraphProperties::analyze(&g, 9);
        let cached = SampleQualityReport::evaluate_with_full_properties(&g, &props, &sample, 9);
        assert_eq!(direct, cached);
    }
}
