//! Biased Random Jump (BRJ) sampling — the paper's default technique.
//!
//! BRJ (section 3.2.1) is a variation of Random Jump proposed by the paper:
//! instead of jumping to arbitrary vertices, every new walk starts from one of
//! the `k` highest out-degree vertices ("the core of the network"). The
//! intuition is that the convergence of the algorithms PREDIcT targets
//! (PageRank, top-k ranking, semi-clustering) is dictated by highly connected
//! hub vertices, so biasing the sample towards them preserves connectivity and
//! the convergence trend better than unbiased jumps — especially at small
//! sampling ratios.

use crate::random_jump::{default_step_budget, walk_until, DEFAULT_RESTART_PROBABILITY};
use crate::traits::{target_sample_size, Sampler};
use crate::visited::SampleScratch;
use predict_graph::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default fraction of vertices used as seed set (`k = 1%` of vertices,
/// section 5.3 of the paper).
pub const DEFAULT_SEED_FRACTION: f64 = 0.01;

/// Hub threshold of the degree-aware step budget: a graph whose maximum
/// out-degree is at least this multiple of its average out-degree has the
/// hub core BRJ's restarts rely on. Web/social analogs (R-MAT, preferential
/// attachment, DC-SBM) sit far above it; regular lattices such as the grid
/// road network sit near 1.
pub const HUB_DEGREE_RATIO: f64 = 4.0;

/// Step budget multiplier (steps per vertex) on hub-free graphs. Generous
/// enough that any walk that *can* reach its target does, while capping the
/// pathological case — hub-biased restarts on a lattice with no hubs — at
/// a small multiple of `V` instead of the 200x default safety valve.
pub const HUB_FREE_STEPS_PER_VERTEX: usize = 8;

/// Biased Random Jump sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasedRandomJump {
    /// Probability of ending the current walk at each step and jumping back
    /// to one of the seed vertices.
    pub restart_probability: f64,
    /// Fraction of the graph's vertices used as the high-out-degree seed set.
    pub seed_fraction: f64,
}

impl Default for BiasedRandomJump {
    fn default() -> Self {
        Self {
            restart_probability: DEFAULT_RESTART_PROBABILITY,
            seed_fraction: DEFAULT_SEED_FRACTION,
        }
    }
}

impl BiasedRandomJump {
    /// Creates a BRJ sampler.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < restart_probability <= 1` and
    /// `0 < seed_fraction <= 1`.
    pub fn new(restart_probability: f64, seed_fraction: f64) -> Self {
        assert!(
            restart_probability > 0.0 && restart_probability <= 1.0,
            "restart probability must be in (0, 1], got {restart_probability}"
        );
        assert!(
            seed_fraction > 0.0 && seed_fraction <= 1.0,
            "seed fraction must be in (0, 1], got {seed_fraction}"
        );
        Self {
            restart_probability,
            seed_fraction,
        }
    }

    /// The high-out-degree seed set BRJ jumps back to: the top
    /// `seed_fraction` of vertices by out-degree (at least one vertex).
    ///
    /// Borrows the graph's cached degree ordering, so repeated draws on the
    /// same graph select their seeds in O(k) instead of re-sorting all
    /// vertices per sample.
    pub fn seed_set<'g>(&self, graph: &'g CsrGraph) -> &'g [VertexId] {
        if graph.num_vertices() == 0 {
            return &[];
        }
        let k = ((graph.num_vertices() as f64 * self.seed_fraction).ceil() as usize)
            .clamp(1, graph.num_vertices());
        &graph.vertices_by_out_degree_desc()[..k]
    }

    /// The walk step budget BRJ grants itself on `graph`, chosen by degree
    /// skew (ROADMAP "degree-aware step budget").
    ///
    /// BRJ's premise is a hub core: restarts jump to the highest out-degree
    /// vertices and the walk radiates from them. On a graph whose maximum
    /// degree is within [`HUB_DEGREE_RATIO`] of the average — a road-network
    /// lattice, a chain — there are no hubs to find, every restart lands in
    /// an ordinary neighborhood, and the walk crawls; burning the full
    /// default safety valve (200 steps per vertex) before the uniform fill
    /// kicks in is pure waste. Such graphs get
    /// [`HUB_FREE_STEPS_PER_VERTEX`] steps per vertex instead. Hub-bearing
    /// graphs keep the default budget, which their walks never exhaust —
    /// so samples there are unchanged.
    pub fn step_budget(&self, graph: &CsrGraph) -> usize {
        let max_degree = graph
            .vertices_by_out_degree_desc()
            .first()
            .map(|&v| graph.out_degree(v))
            .unwrap_or(0);
        let hub_free = (max_degree as f64) < HUB_DEGREE_RATIO * graph.avg_degree().max(1.0);
        if hub_free {
            graph
                .num_vertices()
                .saturating_mul(HUB_FREE_STEPS_PER_VERTEX)
                .max(10_000)
        } else {
            default_step_budget(graph)
        }
    }
}

impl Sampler for BiasedRandomJump {
    fn name(&self) -> &'static str {
        "BRJ"
    }

    fn sample_vertices_with(
        &self,
        graph: &CsrGraph,
        ratio: f64,
        seed: u64,
        scratch: &mut SampleScratch,
    ) -> Vec<VertexId> {
        let target = target_sample_size(graph.num_vertices(), ratio);
        if target == 0 {
            return Vec::new();
        }
        let seeds = self.seed_set(graph);
        let mut rng = StdRng::seed_from_u64(seed);
        walk_until(
            graph,
            target,
            self.restart_probability,
            self.step_budget(graph),
            &mut rng,
            scratch,
            |rng, _graph| seeds[rng.gen_range(0..seeds.len())],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_jump::RandomJump;
    use predict_graph::dstat::DStatReport;
    use predict_graph::generators::{generate_rmat, RmatConfig};
    use predict_graph::induced_subgraph;
    use predict_graph::properties::weakly_connected_components;
    use std::collections::HashSet;

    #[test]
    fn respects_target_size() {
        let g = generate_rmat(&RmatConfig::new(9, 6).with_seed(3));
        let s = BiasedRandomJump::default().sample_vertices(&g, 0.1, 7);
        assert_eq!(s.len(), (g.num_vertices() as f64 * 0.1).round() as usize);
    }

    #[test]
    fn seed_set_is_highest_out_degree_vertices() {
        let g = generate_rmat(&RmatConfig::new(8, 6).with_seed(3));
        let brj = BiasedRandomJump::default();
        let seeds = brj.seed_set(&g);
        assert!(!seeds.is_empty());
        let min_seed_degree = seeds.iter().map(|&v| g.out_degree(v)).min().unwrap();
        let in_seed: HashSet<_> = seeds.iter().copied().collect();
        // No vertex outside the seed set has a strictly larger out-degree
        // than the smallest seed.
        for v in g.vertices() {
            if !in_seed.contains(&v) {
                assert!(g.out_degree(v) <= min_seed_degree);
            }
        }
    }

    #[test]
    fn seed_set_size_follows_fraction() {
        let g = generate_rmat(&RmatConfig::new(10, 4).with_seed(1));
        let brj = BiasedRandomJump::new(0.15, 0.01);
        assert_eq!(
            brj.seed_set(&g).len(),
            (g.num_vertices() as f64 * 0.01).ceil() as usize
        );
        let brj_all = BiasedRandomJump::new(0.15, 1.0);
        assert_eq!(brj_all.seed_set(&g).len(), g.num_vertices());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        let a = BiasedRandomJump::default().sample_vertices(&g, 0.2, 5);
        let b = BiasedRandomJump::default().sample_vertices(&g, 0.2, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn sample_includes_hub_vertices() {
        let g = generate_rmat(&RmatConfig::new(10, 8).with_seed(5));
        let s = BiasedRandomJump::default().sample_vertices(&g, 0.1, 9);
        let set: HashSet<_> = s.into_iter().collect();
        // The single highest out-degree vertex is always a walk seed, so it
        // must be part of the sample.
        let top = g.vertices_by_out_degree_desc()[0];
        assert!(set.contains(&top));
    }

    #[test]
    fn brj_sample_is_better_connected_than_rj_at_small_ratios() {
        // The paper's motivation for BRJ: at small sampling ratios, biasing
        // walks towards hubs preserves connectivity better than unbiased
        // jumps. Compare the largest weakly-connected-component fraction.
        let g = generate_rmat(&RmatConfig::new(12, 8).with_seed(11));
        let ratio = 0.05;
        let wcc_fraction = |vertices: &[predict_graph::VertexId]| {
            let (sub, _) = induced_subgraph(&g, vertices);
            let labels = weakly_connected_components(&sub);
            let mut sizes = std::collections::HashMap::new();
            for l in labels {
                *sizes.entry(l).or_insert(0usize) += 1;
            }
            *sizes.values().max().unwrap_or(&0) as f64 / sub.num_vertices().max(1) as f64
        };
        let mut brj_better = 0;
        for seed in 0..3 {
            let brj = wcc_fraction(&BiasedRandomJump::default().sample_vertices(&g, ratio, seed));
            let rj = wcc_fraction(&RandomJump::default().sample_vertices(&g, ratio, seed));
            if brj >= rj {
                brj_better += 1;
            }
        }
        assert!(
            brj_better >= 2,
            "BRJ should preserve connectivity at least as well as RJ"
        );
    }

    #[test]
    fn brj_sample_preserves_degree_distribution_reasonably() {
        let g = generate_rmat(&RmatConfig::new(11, 8).with_seed(13));
        let sample = BiasedRandomJump::default().sample(&g, 0.1, 17);
        let report = DStatReport::compare(&g, &sample.graph);
        assert!(
            report.mean_degree_dstat() < 0.5,
            "BRJ degree D-stat too large: {}",
            report.mean_degree_dstat()
        );
    }

    #[test]
    fn step_budget_is_degree_aware() {
        use predict_graph::generators::{generate_grid_road, GridRoadConfig};
        let brj = BiasedRandomJump::default();
        // Hub-bearing web analog: the full default safety valve.
        let rmat = generate_rmat(&RmatConfig::new(10, 8).with_seed(3));
        assert_eq!(
            brj.step_budget(&rmat),
            crate::random_jump::default_step_budget(&rmat),
            "hub-bearing graphs must keep the default budget"
        );
        // Hub-free lattice: the reduced budget.
        let grid = generate_grid_road(&GridRoadConfig::new(40, 40).with_seed(3));
        assert_eq!(
            brj.step_budget(&grid),
            grid.num_vertices() * HUB_FREE_STEPS_PER_VERTEX,
            "hub-free graphs must get the reduced budget"
        );
        assert!(brj.step_budget(&grid) < crate::random_jump::default_step_budget(&grid));
    }

    #[test]
    fn hub_free_graphs_still_honor_the_target_size() {
        use predict_graph::generators::{generate_grid_road, GridRoadConfig};
        let grid = generate_grid_road(&GridRoadConfig::new(32, 32).with_seed(7));
        for ratio in [0.05, 0.1, 0.25] {
            let s = BiasedRandomJump::default().sample_vertices(&grid, ratio, 11);
            assert_eq!(
                s.len(),
                (grid.num_vertices() as f64 * ratio).round() as usize,
                "ratio {ratio}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "seed fraction")]
    fn invalid_seed_fraction_panics() {
        let _ = BiasedRandomJump::new(0.15, 0.0);
    }

    #[test]
    fn empty_graph_gives_empty_sample() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(BiasedRandomJump::default()
            .sample_vertices(&g, 0.5, 1)
            .is_empty());
        assert!(BiasedRandomJump::default().seed_set(&g).is_empty());
    }
}
