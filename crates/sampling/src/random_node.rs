//! Uniform random vertex and random edge sampling baselines.
//!
//! These are the naive baselines that the walk-based techniques are measured
//! against: uniform vertex selection destroys connectivity (the induced
//! subgraph of a sparse graph at a 10% vertex sample keeps roughly 1% of the
//! edges), which is exactly the failure mode the paper's sampling requirements
//! (section 3.2.1) are designed to avoid.

use crate::traits::{target_sample_size, Sampler};
use crate::visited::{SampleScratch, VisitedSet};
use predict_graph::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Uniform random vertex sampling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomNode;

impl Sampler for RandomNode {
    fn name(&self) -> &'static str {
        "RN"
    }

    fn sample_vertices_with(
        &self,
        graph: &CsrGraph,
        ratio: f64,
        seed: u64,
        _scratch: &mut SampleScratch,
    ) -> Vec<VertexId> {
        let target = target_sample_size(graph.num_vertices(), ratio);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vertices: Vec<VertexId> = graph.vertices().collect();
        vertices.shuffle(&mut rng);
        vertices.truncate(target);
        vertices
    }
}

/// Random edge sampling: repeatedly selects a uniformly random edge and adds
/// both endpoints until the vertex target is reached. Preserves density
/// better than [`RandomNode`] but still fragments the graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomEdge;

impl Sampler for RandomEdge {
    fn name(&self) -> &'static str {
        "RE"
    }

    fn sample_vertices_with(
        &self,
        graph: &CsrGraph,
        ratio: f64,
        seed: u64,
        scratch: &mut SampleScratch,
    ) -> Vec<VertexId> {
        let target = target_sample_size(graph.num_vertices(), ratio);
        if target == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let SampleScratch {
            visited: selected,
            buf,
            ..
        } = scratch;
        selected.reset(graph.num_vertices());
        let mut picked: Vec<VertexId> = Vec::with_capacity(target);
        let visit = |v: VertexId, selected: &mut VisitedSet, picked: &mut Vec<VertexId>| {
            if selected.insert(v) {
                picked.push(v);
            }
        };

        // Pick random edges by drawing a random vertex weighted by out-degree
        // (pick a random position in the edge array via a random vertex's
        // adjacency). To stay O(1) per draw we pick a random vertex and then a
        // random out-edge, retrying on sinks; after too many retries fall back
        // to uniform vertices.
        let n = graph.num_vertices();
        let max_attempts = target.saturating_mul(50).max(1000);
        let mut attempts = 0usize;
        while picked.len() < target && attempts < max_attempts {
            attempts += 1;
            let v = rng.gen_range(0..n) as VertexId;
            let nbrs = graph.out_neighbors(v);
            if nbrs.is_empty() {
                continue;
            }
            let u = nbrs[rng.gen_range(0..nbrs.len())];
            visit(v, selected, &mut picked);
            if picked.len() < target {
                visit(u, selected, &mut picked);
            }
        }
        if picked.len() < target {
            let remaining = buf;
            remaining.clear();
            remaining.extend((0..n as VertexId).filter(|&v| !selected.contains(v)));
            remaining.shuffle(&mut rng);
            for &v in remaining.iter() {
                if picked.len() >= target {
                    break;
                }
                visit(v, selected, &mut picked);
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biased_random_jump::BiasedRandomJump;
    use predict_graph::generators::{generate_rmat, RmatConfig};
    use predict_graph::induced_subgraph;
    use std::collections::HashSet;

    #[test]
    fn random_node_respects_target_size() {
        let g = generate_rmat(&RmatConfig::new(9, 6).with_seed(3));
        let s = RandomNode.sample_vertices(&g, 0.1, 7);
        assert_eq!(s.len(), (g.num_vertices() as f64 * 0.1).round() as usize);
    }

    #[test]
    fn random_edge_respects_target_size() {
        let g = generate_rmat(&RmatConfig::new(9, 6).with_seed(3));
        let s = RandomEdge.sample_vertices(&g, 0.1, 7);
        assert_eq!(s.len(), (g.num_vertices() as f64 * 0.1).round() as usize);
    }

    #[test]
    fn both_are_deterministic() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        assert_eq!(
            RandomNode.sample_vertices(&g, 0.2, 5),
            RandomNode.sample_vertices(&g, 0.2, 5)
        );
        assert_eq!(
            RandomEdge.sample_vertices(&g, 0.2, 5),
            RandomEdge.sample_vertices(&g, 0.2, 5)
        );
    }

    #[test]
    fn vertices_are_unique() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        for sampler in [&RandomNode as &dyn Sampler, &RandomEdge as &dyn Sampler] {
            let s = sampler.sample_vertices(&g, 0.3, 9);
            let set: HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), s.len(), "{} returned duplicates", sampler.name());
        }
    }

    #[test]
    fn walk_based_sampling_keeps_more_edges_than_random_node() {
        // The whole point of walk-based sampling: the induced subgraph of a
        // uniform vertex sample is much sparser than a BRJ sample.
        let g = generate_rmat(&RmatConfig::new(11, 8).with_seed(31));
        let ratio = 0.1;
        let edges = |vs: &[VertexId]| induced_subgraph(&g, vs).0.num_edges();
        let rn = edges(&RandomNode.sample_vertices(&g, ratio, 3));
        let brj = edges(&BiasedRandomJump::default().sample_vertices(&g, ratio, 3));
        assert!(
            brj > rn,
            "BRJ sample should retain more edges ({brj}) than uniform vertices ({rn})"
        );
    }

    #[test]
    fn empty_and_zero_cases() {
        let empty = CsrGraph::from_edges(0, &[]);
        assert!(RandomNode.sample_vertices(&empty, 0.5, 1).is_empty());
        assert!(RandomEdge.sample_vertices(&empty, 0.5, 1).is_empty());
        let g = generate_rmat(&RmatConfig::new(6, 4).with_seed(2));
        assert!(RandomNode.sample_vertices(&g, 0.0, 1).is_empty());
        assert!(RandomEdge.sample_vertices(&g, 0.0, 1).is_empty());
    }
}
