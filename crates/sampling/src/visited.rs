//! Reusable visited-set and scratch buffers for sampler walks.
//!
//! Every walk-based sampling technique needs per-walk "have I selected this
//! vertex yet" state. The naive representation — `vec![false; n]` per draw —
//! allocates and zeroes the whole vertex space on every sample, which is pure
//! overhead for PREDIcT's small sampling ratios (a 10% sample touches ~10% of
//! the words). [`VisitedSet`] packs the flags into `u64` words and remembers
//! which words were dirtied, so clearing for the next draw costs
//! **O(set bits)**, not O(n); [`SampleScratch`] bundles it with the vertex
//! buffers the samplers need, so a prediction session can thread one scratch
//! allocation through every sample it draws (see
//! [`Sampler::sample_vertices_with`](crate::Sampler::sample_vertices_with)).

use predict_graph::VertexId;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A fixed-universe bitset over vertex ids with O(set-bits) reset.
///
/// Bits are stored in `u64` words; the indices of words that ever became
/// non-zero since the last reset are tracked, so [`VisitedSet::reset`] clears
/// only those words instead of the whole allocation. Membership semantics are
/// identical to a `Vec<bool>` of the same length.
#[derive(Debug, Default, Clone)]
pub struct VisitedSet {
    words: Vec<u64>,
    /// Indices of words with at least one set bit (each pushed once, when the
    /// word transitions from zero).
    dirty: Vec<u32>,
    /// Number of addressable bits (the vertex-universe size of the last
    /// [`VisitedSet::reset`]).
    universe: usize,
}

impl VisitedSet {
    /// Creates an empty set; call [`VisitedSet::reset`] to size it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the set and (re)sizes it for a universe of `num_vertices` ids.
    ///
    /// Only words dirtied since the last reset are cleared, so back-to-back
    /// samples at small ratios touch a small fraction of the allocation. The
    /// word storage grows monotonically and is reused across resets.
    pub fn reset(&mut self, num_vertices: usize) {
        for &w in &self.dirty {
            self.words[w as usize] = 0;
        }
        self.dirty.clear();
        let needed = num_vertices.div_ceil(64);
        if self.words.len() < needed {
            self.words.resize(needed, 0);
        }
        self.universe = num_vertices;
    }

    /// Number of addressable vertex ids (set by the last reset).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// True when `v`'s bit is set.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe (mirrors `Vec<bool>` indexing).
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        assert!((v as usize) < self.universe, "vertex {v} out of universe");
        self.words[(v >> 6) as usize] & (1u64 << (v & 63)) != 0
    }

    /// Sets `v`'s bit; returns `true` when it was previously unset.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    #[inline]
    pub fn insert(&mut self, v: VertexId) -> bool {
        assert!((v as usize) < self.universe, "vertex {v} out of universe");
        let word = (v >> 6) as usize;
        let bit = 1u64 << (v & 63);
        let old = self.words[word];
        if old & bit != 0 {
            return false;
        }
        if old == 0 {
            self.dirty.push(word as u32);
        }
        self.words[word] = old | bit;
        true
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.dirty
            .iter()
            .map(|&w| self.words[w as usize].count_ones() as usize)
            .sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }
}

/// Reusable working memory for one sampler draw.
///
/// Samplers receive a `&mut SampleScratch` through
/// [`Sampler::sample_vertices_with`](crate::Sampler::sample_vertices_with);
/// all state is reset at the start of each draw, so reusing one scratch
/// across draws is observably identical to a fresh scratch per draw (pinned
/// by the `scratch_reuse` integration tests) — only the allocations are
/// amortized.
#[derive(Debug, Default)]
pub struct SampleScratch {
    /// Visited/selected/burned membership of the current draw.
    pub(crate) visited: VisitedSet,
    /// General vertex buffer (remainder fill, unburned-neighbor staging).
    pub(crate) buf: Vec<VertexId>,
    /// BFS frontier of burning-based techniques.
    pub(crate) queue: VecDeque<VertexId>,
}

impl SampleScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A pool of [`SampleScratch`] buffers for concurrent draws.
///
/// One shared `Mutex<SampleScratch>` forces concurrent samplers to either
/// serialize or fall back to a fresh allocation per draw — which silently
/// re-pays exactly the cost the scratch exists to amortize whenever a
/// service batch draws samples in parallel. The pool instead hands each
/// draw its own scratch: [`ScratchPool::acquire`] pops a pooled buffer (or
/// creates one only when every buffer is in use) and the returned guard
/// pushes it back on drop, so the pool's size converges to the peak draw
/// concurrency and then stays allocation-free. [`ScratchPool::allocations`]
/// counts the scratches ever created; warm-service tests assert it stays
/// flat.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<SampleScratch>>,
    created: AtomicU64,
}

impl ScratchPool {
    /// Creates an empty pool; scratches are created on first demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a scratch, creating one only if none is free. The guard
    /// returns it to the pool when dropped.
    pub fn acquire(&self) -> ScratchGuard<'_> {
        let pooled = self.free.lock().unwrap_or_else(|e| e.into_inner()).pop();
        let scratch = pooled.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::SeqCst);
            SampleScratch::new()
        });
        ScratchGuard {
            scratch: Some(scratch),
            pool: self,
        }
    }

    /// Total scratches this pool has ever created — flat once the pool is
    /// warm (bounded by the peak number of concurrent draws).
    pub fn allocations(&self) -> u64 {
        self.created.load(Ordering::SeqCst)
    }

    /// Scratches currently checked in (idle).
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// Exclusive checkout of one [`SampleScratch`] from a [`ScratchPool`];
/// dereferences to the scratch and checks it back in on drop (including
/// during a panic unwind, so a failed draw never leaks its buffer).
#[derive(Debug)]
pub struct ScratchGuard<'a> {
    scratch: Option<SampleScratch>,
    pool: &'a ScratchPool,
}

impl Deref for ScratchGuard<'_> {
    type Target = SampleScratch;

    fn deref(&self) -> &SampleScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut SampleScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool
                .free
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains_match_vec_bool() {
        let mut set = VisitedSet::new();
        set.reset(200);
        let mut reference = [false; 200];
        for v in [0u32, 1, 63, 64, 65, 127, 128, 199, 64, 0] {
            let newly = set.insert(v);
            assert_eq!(newly, !reference[v as usize], "insert({v})");
            reference[v as usize] = true;
        }
        for v in 0..200u32 {
            assert_eq!(set.contains(v), reference[v as usize], "contains({v})");
        }
        assert_eq!(set.len(), reference.iter().filter(|&&b| b).count());
    }

    #[test]
    fn reset_clears_previous_bits_only_logically() {
        let mut set = VisitedSet::new();
        set.reset(1000);
        for v in [3u32, 64, 500, 999] {
            set.insert(v);
        }
        assert_eq!(set.len(), 4);
        set.reset(1000);
        assert!(set.is_empty());
        for v in 0..1000u32 {
            assert!(!set.contains(v), "bit {v} survived reset");
        }
    }

    #[test]
    fn reset_tracks_dirty_words_exactly() {
        let mut set = VisitedSet::new();
        set.reset(64 * 100);
        // Three bits in the same word dirty one word; bits in two other
        // words dirty one each.
        for v in [10u32, 11, 12, 640, 6399] {
            set.insert(v);
        }
        assert_eq!(set.dirty.len(), 3);
    }

    #[test]
    fn reset_can_grow_and_shrink_the_universe() {
        let mut set = VisitedSet::new();
        set.reset(10);
        set.insert(9);
        set.reset(100_000);
        assert!(!set.contains(9));
        set.insert(99_999);
        assert!(set.contains(99_999));
        set.reset(8);
        assert!(!set.contains(7));
        assert_eq!(set.universe(), 8);
    }

    #[test]
    fn double_insert_reports_not_new() {
        let mut set = VisitedSet::new();
        set.reset(10);
        assert!(set.insert(5));
        assert!(!set.insert(5));
        assert_eq!(set.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn out_of_universe_contains_panics() {
        let mut set = VisitedSet::new();
        set.reset(10);
        let _ = set.contains(10);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn out_of_universe_insert_panics() {
        let mut set = VisitedSet::new();
        set.reset(0);
        set.insert(0);
    }

    #[test]
    fn scratch_pool_reuses_buffers_once_warm() {
        let pool = ScratchPool::new();
        assert_eq!(pool.allocations(), 0);
        {
            let mut a = pool.acquire();
            a.visited.reset(100);
            a.visited.insert(7);
            let _b = pool.acquire();
            assert_eq!(pool.allocations(), 2, "two concurrent checkouts");
        }
        assert_eq!(pool.idle(), 2);
        // Sequential reuse never allocates again.
        for _ in 0..10 {
            let mut s = pool.acquire();
            s.visited.reset(50);
            s.visited.insert(3);
        }
        assert_eq!(pool.allocations(), 2, "warm pool must not allocate");
    }

    #[test]
    fn scratch_pool_recovers_buffers_from_panicking_draws() {
        let pool = ScratchPool::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _s = pool.acquire();
            panic!("draw failed");
        }));
        assert!(caught.is_err());
        assert_eq!(pool.idle(), 1, "the guard must check the scratch back in");
        let _again = pool.acquire();
        assert_eq!(pool.allocations(), 1, "the recovered scratch is reused");
    }
}
