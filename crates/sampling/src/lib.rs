//! Graph sampling techniques for PREDIcT sample runs.
//!
//! The first ingredient of the PREDIcT methodology (section 3.2 of the paper)
//! is a sampling technique that selects a small fraction of a graph's vertices
//! while preserving the properties that drive an iterative algorithm's
//! convergence: connectivity, in/out degree proportionality and effective
//! diameter. This crate implements:
//!
//! * [`BiasedRandomJump`] (**BRJ**) — the paper's contribution and default:
//!   random walks that always restart from the highest out-degree vertices.
//! * [`RandomJump`] (**RJ**) — restart-based random walks with uniform jumps
//!   (Leskovec & Faloutsos).
//! * [`Mhrw`] (**MHRW**) — Metropolis–Hastings random walk with uniform
//!   stationary distribution (Gjoka et al.), the unbiased extreme used in the
//!   paper's Figure 9 sensitivity analysis.
//! * [`ForestFire`] — burning-based sampling (Leskovec & Faloutsos).
//! * [`RandomNode`] / [`RandomEdge`] — naive baselines.
//!
//! plus [`quality`] metrics for ranking techniques by how well their samples
//! preserve graph properties.
//!
//! Sampler walks are the hot path of PREDIcT sample runs, so all per-draw
//! state lives in a reusable [`SampleScratch`] (a [`VisitedSet`] bitset with
//! O(set-bits) reset plus walk buffers) threaded through
//! [`Sampler::sample_vertices_with`]; prediction sessions reuse one scratch
//! across every draw, and the scratch never changes a drawn sample.
//!
//! # Example
//!
//! ```
//! use predict_graph::generators::{generate_rmat, RmatConfig};
//! use predict_sampling::{BiasedRandomJump, Sampler};
//!
//! let graph = generate_rmat(&RmatConfig::new(10, 8).with_seed(1));
//! let sample = BiasedRandomJump::default().sample(&graph, 0.1, 42);
//! assert!((sample.achieved_ratio - 0.1).abs() < 0.01);
//! assert!(sample.graph.num_edges() > 0);
//! ```

pub mod biased_random_jump;
pub mod forest_fire;
pub mod mhrw;
pub mod quality;
pub mod random_jump;
pub mod random_node;
pub mod traits;
pub mod visited;

pub use biased_random_jump::BiasedRandomJump;
pub use forest_fire::ForestFire;
pub use mhrw::Mhrw;
pub use quality::{rank_samplers, SampleQualityReport};
pub use random_jump::RandomJump;
pub use random_node::{RandomEdge, RandomNode};
pub use traits::{target_sample_size, technique_from_name, GraphSample, Sampler};
pub use visited::{SampleScratch, ScratchGuard, ScratchPool, VisitedSet};

/// All sampling techniques evaluated in the paper's Figure 9 sensitivity
/// analysis (BRJ, RJ, MHRW), with the paper's default parameters
/// (`p = 0.15`, BRJ seed set = 1% of vertices).
pub fn paper_samplers() -> Vec<Box<dyn Sampler>> {
    vec![
        Box::new(BiasedRandomJump::default()),
        Box::new(RandomJump::default()),
        Box::new(Mhrw::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_samplers_are_brj_rj_mhrw() {
        let names: Vec<_> = paper_samplers().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["BRJ", "RJ", "MHRW"]);
    }
}
