//! Process-wide metrics registry: counters, gauges and fixed-bucket
//! histograms with deterministically ordered snapshots.
//!
//! Instruments are created (or fetched) by name from the global
//! [`registry`]; handles are `Arc`s, so hot paths cache them once and then
//! touch only relaxed atomics. A [`Registry::snapshot`] walks every
//! instrument in **sorted name order** and freezes its value — two
//! processes performing the same multiset of metric operations produce
//! byte-identical serialized snapshots no matter how their threads
//! interleaved, because every mutation is a commutative atomic add.
//!
//! Histograms use fixed ascending bucket edges chosen at creation (the
//! default is an exponential nanosecond ladder suited to latencies from
//! 1 µs to ~2 s) plus an overflow bucket. Quantiles are derived from the
//! frozen buckets ([`HistogramSnapshot::quantile`]): the reported value is
//! the upper edge of the bucket containing the requested rank, i.e. an
//! upper bound with one-bucket resolution — deterministic, mergeable, and
//! cheap, at the price of edge-granularity.

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram. `edges` are ascending inclusive upper bounds;
/// `buckets` has one extra overflow slot for values above the last edge.
#[derive(Debug)]
pub struct Histogram {
    edges: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(edges: Vec<u64>) -> Self {
        assert!(
            !edges.is_empty(),
            "histogram needs at least one bucket edge"
        );
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly ascending"
        );
        let buckets = (0..=edges.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            edges,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Exponential edge ladder: `n` edges starting at `start`, each
    /// `factor` times the previous.
    pub fn exponential_edges(start: u64, factor: u64, n: usize) -> Vec<u64> {
        assert!(start > 0 && factor > 1 && n > 0);
        let mut edges = Vec::with_capacity(n);
        let mut edge = start;
        for _ in 0..n {
            edges.push(edge);
            edge = edge.saturating_mul(factor);
        }
        edges.dedup(); // saturation can repeat u64::MAX
        edges
    }

    /// Default latency ladder: 1 µs to ~2.1 s in powers of two (32 edges).
    pub fn default_latency_edges() -> Vec<u64> {
        Self::exponential_edges(1_000, 2, 32)
    }

    /// Records one observation. A value lands in the first bucket whose
    /// edge is `>=` it; values above the last edge land in the overflow
    /// bucket.
    pub fn record(&self, value: u64) {
        let idx = self.edges.partition_point(|&e| value > e);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// RAII timer recording elapsed nanoseconds into a histogram on drop, so
/// every return path of a scope (including early returns and unwinds) is
/// measured.
pub struct ScopeTimer {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl Drop for ScopeTimer {
    fn drop(&mut self) {
        self.histogram
            .record(self.start.elapsed().as_nanos() as u64);
    }
}

/// Starts a [`ScopeTimer`] against the named histogram in the global
/// [`registry`] (created with the default latency edges if absent).
pub fn time_scope(name: &str) -> ScopeTimer {
    ScopeTimer {
        histogram: registry().histogram(name),
        start: Instant::now(),
    }
}

/// Named collection of instruments. Use the process-global [`registry`] in
/// production code; tests build private instances with [`Registry::new`].
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetches or creates the named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Fetches or creates the named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Fetches or creates the named histogram with the default latency
    /// edges.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, Histogram::default_latency_edges)
    }

    /// Fetches the named histogram, creating it with `edges()` if absent.
    /// An existing histogram keeps its original edges.
    pub fn histogram_with(&self, name: &str, edges: impl FnOnce() -> Vec<u64>) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(edges()))),
        )
    }

    /// Freezes every instrument into a deterministically ordered snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, g)| GaugeSnapshot {
                name: name.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: name.clone(),
                edges: h.edges.clone(),
                buckets: h
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                count: h.count(),
                sum: h.sum.load(Ordering::Relaxed),
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Frozen counter value.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CounterSnapshot {
    /// Instrument name.
    pub name: String,
    /// Count at snapshot time.
    pub value: u64,
}

/// Frozen gauge value.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GaugeSnapshot {
    /// Instrument name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: String,
    /// Ascending inclusive upper bucket bounds.
    pub edges: Vec<u64>,
    /// Per-bucket counts; the final entry is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Upper-bound quantile estimate: the upper edge of the bucket holding
    /// the observation at rank `ceil(q * count)`. Returns
    /// [`f64::INFINITY`] when that rank falls in the overflow bucket and
    /// `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return Some(match self.edges.get(i) {
                    Some(&edge) => edge as f64,
                    None => f64::INFINITY,
                });
            }
        }
        Some(f64::INFINITY)
    }

    /// Median upper bound.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// Deterministically ordered freeze of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let registry = Registry::new();
        let c = registry.counter("c");
        c.incr();
        c.add(4);
        registry.gauge("g").set(17);
        assert_eq!(registry.counter("c").get(), 5);
        assert_eq!(registry.gauge("g").get(), 17);
    }

    #[test]
    fn histogram_bucket_edges_zero_max_and_overflow() {
        let registry = Registry::new();
        let h = registry.histogram_with("h", || vec![10, 100, 1_000]);
        h.record(0); // zero → first bucket (0 <= 10)
        h.record(10); // exactly on an edge → that bucket, inclusive
        h.record(11); // just past the edge → next bucket
        h.record(1_000); // exactly the last edge → last real bucket
        h.record(1_001); // past the last edge → overflow
        h.record(u64::MAX); // max → overflow
        let snap = registry.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.buckets, vec![2, 1, 1, 2]);
        assert_eq!(hs.count, 6);
        // Atomic sums wrap on overflow; mirror that in the expectation.
        assert_eq!(hs.sum, 2_022u64.wrapping_add(u64::MAX));
    }

    #[test]
    fn exponential_edges_grow_and_saturate() {
        let edges = Histogram::exponential_edges(1_000, 2, 4);
        assert_eq!(edges, vec![1_000, 2_000, 4_000, 8_000]);
        // Saturating growth dedups instead of producing equal edges.
        let big = Histogram::exponential_edges(u64::MAX / 2, 2, 4);
        assert!(big.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn quantiles_report_bucket_upper_edges() {
        let registry = Registry::new();
        let h = registry.histogram_with("q", || vec![10, 20, 30]);
        for v in [1, 2, 3, 4, 5, 15, 16, 17, 25, 100] {
            h.record(v);
        }
        let hs = registry.snapshot();
        let hs = hs.histogram("q").unwrap();
        assert_eq!(hs.p50(), Some(10.0)); // rank 5 of 10 → first bucket
        assert_eq!(hs.p90(), Some(30.0)); // rank 9 → third bucket
        assert_eq!(hs.p99(), Some(f64::INFINITY)); // rank 10 → overflow
        assert_eq!(hs.quantile(0.0), Some(10.0)); // rank clamps to 1
        let empty = HistogramSnapshot {
            name: "e".to_string(),
            edges: vec![1],
            buckets: vec![0, 0],
            count: 0,
            sum: 0,
        };
        assert_eq!(empty.p50(), None);
    }

    #[test]
    fn snapshot_is_identical_across_thread_interleavings() {
        let run = || {
            let registry = Arc::new(Registry::new());
            let mut handles = Vec::new();
            for t in 0..4u64 {
                let registry = Arc::clone(&registry);
                handles.push(std::thread::spawn(move || {
                    for i in 0..100u64 {
                        registry.counter("ops").add(t + 1);
                        registry
                            .histogram_with("lat", || vec![50, 500])
                            .record(i * 7 % 600);
                    }
                }));
            }
            for handle in handles {
                handle.join().unwrap();
            }
            serde_json::to_string(&registry.snapshot())
        };
        // Same multiset of operations under different interleavings must
        // serialize identically.
        let first = run();
        for _ in 0..3 {
            assert_eq!(run(), first);
        }
    }

    #[test]
    fn snapshot_orders_instruments_by_name() {
        let registry = Registry::new();
        registry.counter("zebra").incr();
        registry.counter("apple").incr();
        registry.counter("mango").incr();
        let names: Vec<_> = registry
            .snapshot()
            .counters
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(names, vec!["apple", "mango", "zebra"]);
    }

    #[test]
    fn histogram_with_keeps_original_edges() {
        let registry = Registry::new();
        let first = registry.histogram_with("h", || vec![1, 2]);
        let second = registry.histogram_with("h", || vec![100]);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(
            registry.snapshot().histogram("h").unwrap().edges,
            vec![1, 2]
        );
    }

    #[test]
    fn scope_timer_records_on_drop() {
        // Uses the global registry: assert on the count delta because other
        // tests in the process may share it.
        let before = registry().histogram("test.scope_timer").count();
        {
            let _t = time_scope("test.scope_timer");
        }
        let after = registry().histogram("test.scope_timer").count();
        assert_eq!(after, before + 1);
    }
}
