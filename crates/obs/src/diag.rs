//! Level-gated stderr diagnostics: the [`diag!`](crate::diag!) macro.
//!
//! Every human-facing warning or error in the stack goes through one
//! macro instead of raw `eprintln!`, so verbosity is controlled in one
//! place: the `PREDICT_LOG` environment variable (`off`, `error`, `warn`
//! (default), `info`, `debug`). Messages at or below the configured level
//! print to **stderr only** — stdout belongs to scenario output and must
//! stay byte-identical for the goldens.
//!
//! Parsing follows the `bsp::knobs` convention — a pure function
//! ([`parse_level`]) testable without touching the environment, and a
//! cached process-wide reader ([`max_level`]). The knob lives here rather
//! than in `bsp::knobs` because `predict_obs` sits *below* `predict_bsp`
//! in the dependency graph and diagnostics must work during `bsp`'s own
//! initialization.

use std::sync::OnceLock;

/// Environment variable selecting the diagnostic level.
pub const LOG_VAR: &str = "PREDICT_LOG";

/// Diagnostic severity, ordered so that `level <= max_level()` means
/// "print it".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Suppress everything.
    Off,
    /// Unrecoverable failures.
    Error,
    /// Suspicious but recoverable conditions (the default).
    Warn,
    /// Progress notes.
    Info,
    /// Detailed internals.
    Debug,
}

impl Level {
    /// Lower-case tag printed in the message prefix.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Parses a `PREDICT_LOG` value. Unset or unrecognized values fall back to
/// [`Level::Warn`] — a bad knob must never make the stack noisier or
/// quieter than the default.
pub fn parse_level(value: Option<&str>) -> Level {
    match value.map(|v| v.trim().to_ascii_lowercase()).as_deref() {
        Some("off" | "none" | "silent") => Level::Off,
        Some("error" | "err") => Level::Error,
        Some("warn" | "warning") => Level::Warn,
        Some("info") => Level::Info,
        Some("debug" | "trace") => Level::Debug,
        _ => Level::Warn,
    }
}

/// The process-wide maximum level, read from `PREDICT_LOG` once and
/// cached.
pub fn max_level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL.get_or_init(|| parse_level(std::env::var(LOG_VAR).ok().as_deref()))
}

/// True when a message at `level` should print.
pub fn enabled(level: Level) -> bool {
    level != Level::Off && level <= max_level()
}

/// Prints a level-gated diagnostic to stderr.
///
/// ```
/// predict_obs::diag!(Warn, "ignoring invalid knob {}", "PREDICT_THREADS");
/// ```
///
/// The first argument is a [`Level`] variant name; the rest is a
/// `format!` argument list. Output is `[level] message` on stderr, and
/// nothing at all when the level is gated off.
#[macro_export]
macro_rules! diag {
    ($level:ident, $($arg:tt)*) => {{
        if $crate::diag::enabled($crate::diag::Level::$level) {
            eprintln!(
                "[{}] {}",
                $crate::diag::Level::$level.name(),
                format_args!($($arg)*)
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_level_accepts_aliases_case_and_whitespace() {
        assert_eq!(parse_level(Some("off")), Level::Off);
        assert_eq!(parse_level(Some("none")), Level::Off);
        assert_eq!(parse_level(Some("silent")), Level::Off);
        assert_eq!(parse_level(Some("error")), Level::Error);
        assert_eq!(parse_level(Some("err")), Level::Error);
        assert_eq!(parse_level(Some("warn")), Level::Warn);
        assert_eq!(parse_level(Some("warning")), Level::Warn);
        assert_eq!(parse_level(Some("info")), Level::Info);
        assert_eq!(parse_level(Some("debug")), Level::Debug);
        assert_eq!(parse_level(Some("trace")), Level::Debug);
        assert_eq!(parse_level(Some(" INFO ")), Level::Info);
        assert_eq!(parse_level(Some("DeBuG")), Level::Debug);
    }

    #[test]
    fn parse_level_defaults_to_warn() {
        assert_eq!(parse_level(None), Level::Warn);
        assert_eq!(parse_level(Some("")), Level::Warn);
        assert_eq!(parse_level(Some("verbose")), Level::Warn);
        assert_eq!(parse_level(Some("3")), Level::Warn);
    }

    #[test]
    fn level_ordering_gates_correctly() {
        assert!(Level::Error <= Level::Warn);
        assert!(Level::Warn <= Level::Warn);
        assert!(Level::Info > Level::Warn);
        assert!(Level::Debug > Level::Info);
    }

    #[test]
    fn off_level_messages_never_print() {
        // `enabled(Off)` is false even at max verbosity: Off is a gate
        // setting, not a message severity.
        assert!(!enabled(Level::Off));
    }

    #[test]
    fn diag_macro_compiles_with_format_args() {
        // Smoke test: the macro must accept plain strings and format args.
        crate::diag!(Debug, "plain");
        crate::diag!(Debug, "formatted {} {n}", 1, n = 2);
    }
}
