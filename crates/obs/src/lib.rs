//! Observability substrate for the PREDIcT reproduction.
//!
//! PREDIcT's value proposition is *explaining where time goes* in iterative
//! BSP jobs; this crate lets the stack explain where its own time goes.
//! Before it existed, timing and counters lived in disconnected islands —
//! `SessionStats`, `RunProfile.measured`, the pool's spawn counters, ad-hoc
//! `eprintln!` in workers — with no request-scoped view. Three pieces close
//! that gap:
//!
//! * [`trace`] — a span-based tracer. Every layer opens named spans
//!   (service request → session stage → BSP run → superstep → phase) via
//!   cheap RAII guards; when tracing is disabled (the default) a span is a
//!   single relaxed atomic load, so goldens and perf stay byte/cost
//!   identical. Collected spans export as Chrome trace-event JSON loadable
//!   in `chrome://tracing` / Perfetto.
//! * [`metrics`] — a process-wide registry of counters, gauges and
//!   fixed-bucket histograms. Snapshots are deterministically ordered
//!   (sorted by name) and identical for the same multiset of operations
//!   regardless of thread interleaving, so they can be asserted on and
//!   diffed. p50/p90/p99 are derivable from the histogram buckets.
//! * [`mod@diag`] — one level-gated stderr diagnostic macro ([`diag!`]),
//!   replacing raw `eprintln!` across workers and drivers; the level comes
//!   from `PREDICT_LOG`.
//!
//! The crate sits at the bottom of the workspace dependency graph (below
//! `predict_bsp`), so it cannot read the centralized `PREDICT_*` knob
//! parsers; enabling tracing is pushed in from above
//! ([`trace::start_file`]), which `predict_bench::observability_guard` wires
//! to the `PREDICT_TRACE` knob.
//!
//! # Contract: zero cost when off, zero result skew when on
//!
//! Neither tracing nor metrics ever touches stdout or experiment JSON:
//! spans buffer in memory and flush to the `PREDICT_TRACE` file, metrics
//! live in atomics until a snapshot is requested. Scenario goldens are
//! byte-identical with tracing on and off (CI replays them both ways), and
//! the `perf_probe` gate pins the disabled-tracer overhead.

pub mod diag;
pub mod metrics;
pub mod trace;

pub use diag::Level;
pub use metrics::{registry, MetricsSnapshot, Registry};
pub use trace::{span, SpanGuard, TraceGuard};
