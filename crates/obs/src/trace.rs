//! Span-based tracer with Chrome trace-event export.
//!
//! A span is an RAII guard ([`SpanGuard`]) around a named scope: opening it
//! records a monotonic start timestamp, dropping it (including during a
//! panic unwind) records the duration and appends one completed
//! [`TraceEvent`] to the process-wide sink. Nesting comes for free from a
//! thread-local depth counter — spans opened while another span is live on
//! the same thread render inside it, which is also how Chrome's trace
//! viewer stacks complete events that share a `tid`.
//!
//! # Cost model
//!
//! Tracing is **disabled by default**. A disabled [`span`] call performs
//! exactly one relaxed atomic load and returns an empty guard whose drop is
//! a no-op — no timestamp, no allocation, no lock. The `perf_probe` gate
//! pins this (`span_noop` row). Enabled spans take one `Instant` read at
//! open and a short mutex-guarded push at close.
//!
//! # Export
//!
//! [`write_chrome_trace`] renders collected events as Chrome trace-event
//! JSON (`{"traceEvents": [{"ph": "X", ...}]}`), loadable in
//! `chrome://tracing` and Perfetto. [`start_file`] returns a [`TraceGuard`]
//! that enables tracing and flushes the file (with the current metrics
//! snapshot embedded under a `"metrics"` key) when dropped — the flush hook
//! `predict_bench::observability_guard` installs when `PREDICT_TRACE` is
//! set. Timestamps are relative to a process-start epoch, so a trace's
//! first event sits near zero regardless of when tracing was switched on.

use crate::metrics::MetricsSnapshot;
use serde::Value;
use std::cell::Cell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Whether spans are recorded. One relaxed load on every [`span`] call.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic epoch all span timestamps are measured from. Initialized on
/// first use (at latest when tracing is enabled).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process epoch.
fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stable per-thread id for trace events (dense, assigned on first span).
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Current span-stack depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// True when spans are currently recorded.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off. Usually reached through [`start_file`];
/// exposed for tests and embedders with their own export path.
pub fn set_enabled(on: bool) {
    if on {
        epoch(); // anchor timestamps before the first span opens
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// One argument value attached to a span, rendered into the Chrome trace
/// `args` object.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer argument.
    U64(u64),
    /// A float argument.
    F64(f64),
    /// A string argument.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

/// One completed span, in the shape Chrome's `"ph": "X"` events need.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name (e.g. `service.request`, `bsp.superstep`).
    pub name: String,
    /// Nanoseconds from the process epoch to span open.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Thread the span ran on (dense tracer-assigned id, not the OS tid).
    pub tid: u64,
    /// Nesting depth at open (0 = top-level on its thread).
    pub depth: u32,
    /// Arguments attached via [`SpanGuard::arg`] / [`SpanGuard::set_arg`].
    pub args: Vec<(&'static str, ArgValue)>,
}

fn sink() -> &'static Mutex<Vec<TraceEvent>> {
    static SINK: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Drains and returns every event recorded so far.
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *sink().lock().unwrap_or_else(|e| e.into_inner()))
}

/// Live state of an enabled span; absent entirely when tracing is off.
struct ActiveSpan {
    name: &'static str,
    start_ns: u64,
    depth: u32,
    args: Vec<(&'static str, ArgValue)>,
}

/// RAII span handle returned by [`span`]. Records one [`TraceEvent`] when
/// dropped — which happens on panic unwind too, so a span that dies
/// mid-flight still appears in the trace with the time it actually spent.
pub struct SpanGuard {
    /// Boxed so a disabled guard is a single pointer-sized `None`.
    active: Option<Box<ActiveSpan>>,
}

/// Opens a span named `name`. When tracing is disabled this is a no-op
/// costing one relaxed atomic load.
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { active: None };
    }
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard {
        active: Some(Box::new(ActiveSpan {
            name,
            start_ns: now_ns(),
            depth,
            args: Vec::new(),
        })),
    }
}

impl SpanGuard {
    /// Attaches an argument (builder style). No-op when tracing is off.
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.set_arg(key, value);
        self
    }

    /// Attaches an argument to a live span — for values only known after
    /// the span opened (e.g. per-worker compute times collected at a
    /// superstep barrier). No-op when tracing is off.
    pub fn set_arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(active) = &mut self.active {
            active.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let end_ns = now_ns();
        DEPTH.with(|d| d.set(active.depth));
        let event = TraceEvent {
            name: active.name.to_string(),
            start_ns: active.start_ns,
            dur_ns: end_ns.saturating_sub(active.start_ns),
            tid: TID.with(|t| *t),
            depth: active.depth,
            args: active.args,
        };
        sink().lock().unwrap_or_else(|e| e.into_inner()).push(event);
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event export.

fn arg_value_json(value: &ArgValue) -> Value {
    match value {
        ArgValue::U64(v) => Value::UInt(*v),
        ArgValue::F64(v) => Value::Float(*v),
        ArgValue::Str(v) => Value::Str(v.clone()),
    }
}

fn event_json(event: &TraceEvent) -> Value {
    // Chrome expects microsecond timestamps; fractional values are allowed,
    // so nanosecond precision survives the conversion.
    let mut entries = vec![
        ("name".to_string(), Value::Str(event.name.clone())),
        ("cat".to_string(), Value::Str("predict".to_string())),
        ("ph".to_string(), Value::Str("X".to_string())),
        ("ts".to_string(), Value::Float(event.start_ns as f64 / 1e3)),
        ("dur".to_string(), Value::Float(event.dur_ns as f64 / 1e3)),
        ("pid".to_string(), Value::UInt(1)),
        ("tid".to_string(), Value::UInt(event.tid)),
    ];
    if !event.args.is_empty() {
        let args = event
            .args
            .iter()
            .map(|(k, v)| (k.to_string(), arg_value_json(v)))
            .collect();
        entries.push(("args".to_string(), Value::Map(args)));
    }
    Value::Map(entries)
}

/// Writes `events` to `path` as Chrome trace-event JSON. When `metrics` is
/// given, the snapshot is embedded under a top-level `"metrics"` key —
/// trace viewers ignore unknown top-level keys, while `trace_view` renders
/// the table from it.
pub fn write_chrome_trace(
    path: &Path,
    events: &[TraceEvent],
    metrics: Option<&MetricsSnapshot>,
) -> std::io::Result<()> {
    let mut entries = vec![(
        "traceEvents".to_string(),
        Value::Seq(events.iter().map(event_json).collect()),
    )];
    if let Some(snapshot) = metrics {
        entries.push(("metrics".to_string(), serde_json::to_value(snapshot)));
    }
    let json = serde_json::to_string(&Value::Map(entries))
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, json)
}

/// Flush guard returned by [`start_file`]: tracing is live while it exists;
/// dropping it disables tracing and writes the Chrome trace file (with the
/// global metrics snapshot embedded).
pub struct TraceGuard {
    path: PathBuf,
}

/// Enables tracing and returns a guard that flushes every recorded span to
/// `path` as Chrome trace-event JSON when dropped. Events recorded before
/// the call (from an earlier, already-flushed guard) are discarded so the
/// file holds exactly this guard's window.
pub fn start_file(path: impl Into<PathBuf>) -> TraceGuard {
    let _ = take_events();
    set_enabled(true);
    TraceGuard { path: path.into() }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        set_enabled(false);
        let events = take_events();
        let snapshot = crate::metrics::registry().snapshot();
        if let Err(e) = write_chrome_trace(&self.path, &events, Some(&snapshot)) {
            crate::diag!(
                Warn,
                "could not write trace file {}: {e}",
                self.path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracer's enabled flag and sink are process-global; every test
    /// that flips them holds this lock so parallel test threads cannot
    /// observe each other's spans.
    fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _lock = trace_lock();
        set_enabled(false);
        let _ = take_events();
        {
            let _a = span("outer");
            let _b = span("inner").arg("k", 1u64);
        }
        assert!(take_events().is_empty());
    }

    #[test]
    fn enabled_spans_record_nesting_depth_and_order() {
        let _lock = trace_lock();
        let _ = take_events();
        set_enabled(true);
        {
            let _outer = span("outer");
            {
                let _inner = span("inner").arg("superstep", 3u64);
            }
        }
        set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), 2);
        // Inner closes first, so it is recorded first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[0].args, vec![("superstep", ArgValue::U64(3))]);
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].depth, 0);
        assert_eq!(events[0].tid, events[1].tid);
        // The inner span nests inside the outer span's interval.
        assert!(events[0].start_ns >= events[1].start_ns);
        assert!(events[0].start_ns + events[0].dur_ns <= events[1].start_ns + events[1].dur_ns);
    }

    #[test]
    fn a_panicking_scope_still_records_its_span_and_restores_depth() {
        let _lock = trace_lock();
        let _ = take_events();
        set_enabled(true);
        let result = std::panic::catch_unwind(|| {
            let _span = span("doomed");
            panic!("unwind through the span");
        });
        assert!(result.is_err());
        // Depth unwound: a fresh span on this thread is top-level again.
        {
            let _after = span("after");
        }
        set_enabled(false);
        let events = take_events();
        let doomed = events.iter().find(|e| e.name == "doomed").unwrap();
        let after = events.iter().find(|e| e.name == "after").unwrap();
        assert_eq!(doomed.depth, 0);
        assert_eq!(after.depth, 0);
    }

    #[test]
    fn set_arg_attaches_to_a_live_span() {
        let _lock = trace_lock();
        let _ = take_events();
        set_enabled(true);
        {
            let mut s = span("step");
            s.set_arg("compute_ns", "[1, 2]");
            s.set_arg("ratio", 0.5f64);
        }
        set_enabled(false);
        let events = take_events();
        assert_eq!(
            events[0].args,
            vec![
                ("compute_ns", ArgValue::Str("[1, 2]".to_string())),
                ("ratio", ArgValue::F64(0.5)),
            ]
        );
    }

    #[test]
    fn chrome_export_is_valid_trace_event_json() {
        let _lock = trace_lock();
        let events = vec![TraceEvent {
            name: "bsp.superstep".to_string(),
            start_ns: 1_500,
            dur_ns: 2_500,
            tid: 7,
            depth: 1,
            args: vec![("superstep", ArgValue::U64(4))],
        }];
        let dir = std::env::temp_dir().join(format!("predict_obs_test_{}", std::process::id()));
        let path = dir.join("trace.json");
        write_chrome_trace(&path, &events, None).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let value: Value = serde_json::from_str(&text).unwrap();
        let Value::Map(entries) = value else {
            panic!("trace file must be a JSON object");
        };
        let (_, trace_events) = entries
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .expect("traceEvents key");
        let Value::Seq(items) = trace_events else {
            panic!("traceEvents must be an array");
        };
        let Value::Map(event) = &items[0] else {
            panic!("events must be objects");
        };
        let get = |key: &str| &event.iter().find(|(k, _)| k == key).unwrap().1;
        assert_eq!(get("ph"), &Value::Str("X".to_string()));
        assert_eq!(get("ts"), &Value::Float(1.5));
        assert_eq!(get("dur"), &Value::Float(2.5));
        assert_eq!(get("tid"), &Value::UInt(7));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_guard_enables_flushes_and_disables() {
        let _lock = trace_lock();
        let dir = std::env::temp_dir().join(format!("predict_obs_guard_{}", std::process::id()));
        let path = dir.join("guarded.json");
        {
            let _guard = start_file(&path);
            assert!(is_enabled());
            let _span = span("guarded.work");
        }
        assert!(!is_enabled());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("guarded.work"));
        assert!(text.contains("\"metrics\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
