//! Binary encoding of the serde [`Value`] data model.
//!
//! The store persists artifact payloads as an encoded `Value` tree rather
//! than JSON text because the byte-identity contract of a warm restart
//! demands *exact* float round-trips: a prediction recomputed from a stored
//! sample-run profile must be bit-for-bit the prediction the cold run
//! produced. JSON float formatting/parsing cannot promise that, so floats
//! are stored as their IEEE-754 bit patterns ([`f64::to_bits`]) and every
//! other scalar as fixed-width little-endian words.
//!
//! Wire grammar (all integers little-endian):
//!
//! ```text
//! value := 0x00                          ; Null
//!        | 0x01 u8                       ; Bool (0 = false, 1 = true)
//!        | 0x02 i64                      ; Int
//!        | 0x03 u64                      ; UInt
//!        | 0x04 u64                      ; Float (f64 bit pattern)
//!        | 0x05 u32 byte{len}            ; Str (UTF-8)
//!        | 0x06 u32 value{count}         ; Seq
//!        | 0x07 u32 (str value){count}   ; Map (str = u32 len + UTF-8 key)
//! ```
//!
//! Encoding is deterministic: the vendored serde's `Value` model already
//! fixes map ordering (struct declaration order, sorted hash maps), so
//! identical artifacts always produce identical bytes — which is what makes
//! payload checksums and golden byte-identity assertions meaningful.
//!
//! Decoding is total: every malformed input maps to a [`CodecError`], never
//! a panic, so a corrupted store file flows into the quarantine path.

use serde::Value;
use std::fmt;

const TAG_NULL: u8 = 0x00;
const TAG_BOOL: u8 = 0x01;
const TAG_INT: u8 = 0x02;
const TAG_UINT: u8 = 0x03;
const TAG_FLOAT: u8 = 0x04;
const TAG_STR: u8 = 0x05;
const TAG_SEQ: u8 = 0x06;
const TAG_MAP: u8 = 0x07;

/// Collections larger than this are treated as corruption rather than
/// allocated: the largest real artifact (a CSR edge array) stays far below
/// a billion elements, while a flipped length byte can claim 2^32.
const MAX_COLLECTION_LEN: usize = 1 << 30;

/// Error decoding a binary `Value`; carries the byte offset that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Offset into the payload where decoding failed.
    pub offset: usize,
    /// What went wrong at that offset.
    pub reason: &'static str,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "payload decode failed at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl std::error::Error for CodecError {}

/// Encodes a `Value` tree into the store's binary payload format.
pub fn encode_value(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_into(value, &mut out);
    out
}

fn encode_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::UInt(u) => {
            out.push(TAG_UINT);
            out.extend_from_slice(&u.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            encode_str(s, out);
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_into(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (key, item) in entries {
                encode_str(key, out);
                encode_into(item, out);
            }
        }
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Decodes a payload produced by [`encode_value`], requiring the buffer to
/// contain exactly one value (trailing bytes are corruption).
pub fn decode_value(bytes: &[u8]) -> Result<Value, CodecError> {
    let mut pos = 0usize;
    let value = decode_at(bytes, &mut pos, 0)?;
    if pos != bytes.len() {
        return Err(CodecError {
            offset: pos,
            reason: "trailing bytes after value",
        });
    }
    Ok(value)
}

/// Nesting bound: real artifact trees are a handful of levels deep, while a
/// crafted/corrupt stream of `Seq` tags could otherwise recurse until the
/// stack overflows (a panic the quarantine path must never see).
const MAX_DEPTH: u32 = 64;

fn decode_at(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Value, CodecError> {
    if depth > MAX_DEPTH {
        return Err(CodecError {
            offset: *pos,
            reason: "value nesting too deep",
        });
    }
    let err = |offset: usize, reason: &'static str| CodecError { offset, reason };
    let tag_offset = *pos;
    let tag = *bytes
        .get(*pos)
        .ok_or(err(tag_offset, "truncated: missing tag"))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => {
            let b = *bytes.get(*pos).ok_or(err(*pos, "truncated bool"))?;
            *pos += 1;
            match b {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                _ => Err(err(tag_offset, "invalid bool byte")),
            }
        }
        TAG_INT => Ok(Value::Int(i64::from_le_bytes(take8(bytes, pos)?))),
        TAG_UINT => Ok(Value::UInt(u64::from_le_bytes(take8(bytes, pos)?))),
        TAG_FLOAT => Ok(Value::Float(f64::from_bits(u64::from_le_bytes(take8(
            bytes, pos,
        )?)))),
        TAG_STR => Ok(Value::Str(decode_str(bytes, pos)?)),
        TAG_SEQ => {
            let count = take_len(bytes, pos)?;
            let mut items = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                items.push(decode_at(bytes, pos, depth + 1)?);
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let count = take_len(bytes, pos)?;
            let mut entries = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let key = decode_str(bytes, pos)?;
                let value = decode_at(bytes, pos, depth + 1)?;
                entries.push((key, value));
            }
            Ok(Value::Map(entries))
        }
        _ => Err(err(tag_offset, "unknown value tag")),
    }
}

fn take8(bytes: &[u8], pos: &mut usize) -> Result<[u8; 8], CodecError> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or(CodecError {
            offset: *pos,
            reason: "truncated 8-byte word",
        })?;
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(word)
}

fn take_len(bytes: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    let end = pos
        .checked_add(4)
        .filter(|&e| e <= bytes.len())
        .ok_or(CodecError {
            offset: *pos,
            reason: "truncated length",
        })?;
    let len = u32::from_le_bytes([
        bytes[*pos],
        bytes[*pos + 1],
        bytes[*pos + 2],
        bytes[*pos + 3],
    ]) as usize;
    *pos = end;
    if len > MAX_COLLECTION_LEN {
        return Err(CodecError {
            offset: *pos - 4,
            reason: "collection length implausibly large",
        });
    }
    Ok(len)
}

fn decode_str(bytes: &[u8], pos: &mut usize) -> Result<String, CodecError> {
    let len = take_len(bytes, pos)?;
    let start = *pos;
    let end = start
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or(CodecError {
            offset: start,
            reason: "truncated string",
        })?;
    let s = std::str::from_utf8(&bytes[start..end]).map_err(|_| CodecError {
        offset: start,
        reason: "invalid UTF-8 in string",
    })?;
    *pos = end;
    Ok(s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Value {
        Value::Map(vec![
            ("name".to_string(), Value::Str("pagerank".to_string())),
            ("iters".to_string(), Value::UInt(42)),
            ("delta".to_string(), Value::Int(-7)),
            ("threshold".to_string(), Value::Float(1e-4)),
            ("converged".to_string(), Value::Bool(true)),
            ("missing".to_string(), Value::Null),
            (
                "ratios".to_string(),
                Value::Seq(vec![
                    Value::Float(0.1),
                    Value::Float(0.15),
                    Value::Float(0.2),
                ]),
            ),
        ])
    }

    #[test]
    fn roundtrip_tree() {
        let tree = sample_tree();
        let bytes = encode_value(&tree);
        assert_eq!(decode_value(&bytes).unwrap(), tree);
    }

    #[test]
    fn floats_roundtrip_bit_exact() {
        for f in [
            0.1f64,
            -0.0,
            f64::MIN_POSITIVE,
            1e300,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let bytes = encode_value(&Value::Float(f));
            match decode_value(&bytes).unwrap() {
                Value::Float(g) => assert_eq!(f.to_bits(), g.to_bits()),
                other => panic!("expected float, got {other:?}"),
            }
        }
        // NaN keeps its exact payload bits too.
        let nan = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let bytes = encode_value(&Value::Float(nan));
        match decode_value(&bytes).unwrap() {
            Value::Float(g) => assert_eq!(nan.to_bits(), g.to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_encoding() {
        assert_eq!(encode_value(&sample_tree()), encode_value(&sample_tree()));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = encode_value(&Value::Bool(true));
        bytes.push(0);
        assert!(decode_value(&bytes).is_err());
    }

    #[test]
    fn rejects_unknown_tag() {
        assert!(decode_value(&[0xEE]).is_err());
    }

    #[test]
    fn rejects_deep_nesting() {
        // 100 nested single-element Seqs exceed MAX_DEPTH.
        let mut bytes = Vec::new();
        for _ in 0..100 {
            bytes.push(0x06);
            bytes.extend_from_slice(&1u32.to_le_bytes());
        }
        bytes.push(0x00);
        assert!(decode_value(&bytes).is_err());
    }

    #[test]
    fn corrupt_bytes_never_panic() {
        let bytes = encode_value(&sample_tree());
        for i in 0..bytes.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= mask;
                let _ = decode_value(&corrupt);
            }
        }
    }
}
