//! `predict_store`: the on-disk, versioned, compressed binary artifact store
//! for PREDIcT stage artifacts.
//!
//! PREDIcT's value proposition is amortization — samples, sample runs and
//! trained models are expensive to produce and cheap to reuse — but without
//! persistence every artifact dies with the process and a restarted
//! [`PredictService`](../predict_core/service/index.html) answers every query
//! cold. This crate is the persistence layer: a directory-backed store that a
//! prediction session writes through on every artifact miss and reads back on
//! restart, pinned by a byte-identity contract (a warm-restarted service
//! returns byte-identical predictions and never re-executes a stored sample
//! run).
//!
//! # On-disk layout
//!
//! ```text
//! <root>/
//!   sample/<fnv64-of-key>.art       one file per artifact, per kind
//!   sample_run/<fnv64-of-key>.art
//!   model/<fnv64-of-key>.art
//!   actual_run/<fnv64-of-key>.art
//!   tmp/                            in-flight writes (cleared on open)
//!   quarantine/                     corrupt files moved aside, never deleted
//! ```
//!
//! # File format
//!
//! Every `.art` file is self-describing (all integers little-endian):
//!
//! ```text
//! magic     "PSTR"                       4 bytes
//! format    u32 = 1                      container layout version
//! mlen      u32                          manifest length in bytes
//! manifest  JSON                         see [`Manifest`]
//! mcheck    u64                          FNV-1a over the manifest bytes
//! payload   lz4_flex block               compressed binary Value tree
//! ```
//!
//! The manifest carries the artifact schema version, kind, the full logical
//! key, the dataset provenance hash, and the checksum + lengths of the
//! payload, so every read is verified end-to-end before a single byte
//! reaches a deserializer.
//!
//! # Atomicity and recovery
//!
//! Writes go to `tmp/<unique>.tmp` and are published with a single
//! [`std::fs::rename`] — readers only ever observe absent or complete files;
//! a crash mid-write leaves garbage in `tmp/` that the next [`open`] sweeps.
//! Reads validate magic, versions, manifest checksum, payload lengths and
//! payload checksum; any mismatch (truncation, flipped bits, a foreign
//! codec) moves the file to `quarantine/` with a [`diag!`] warning and
//! reports a miss, so the caller recomputes and overwrites — the store
//! degrades, it never panics. Stale artifacts (provenance or schema-version
//! mismatch) are plain misses: they stay in place until the write-through
//! overwrites them.
//!
//! [`open`]: ArtifactStore::open
//! [`diag!`]: predict_obs::diag!

pub mod codec;

pub use codec::{decode_value, encode_value, CodecError};

use predict_obs::metrics::Counter;
use predict_obs::{diag, registry, span};
use serde::{Deserialize, Serialize, Value};
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Container layout version (the file framing, not the artifact schema).
pub const FORMAT_VERSION: u32 = 1;

/// Artifact schema version: bump when the serialized shape of any artifact
/// changes so older store directories read as stale misses instead of
/// feeding mismatched fields to a deserializer.
pub const SCHEMA_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"PSTR";

/// Largest manifest the reader will allocate for; real manifests are a few
/// hundred bytes, so anything bigger is a corrupt length word.
const MAX_MANIFEST_LEN: usize = 1 << 20;

/// FNV-1a 64-bit over a byte slice — the store's checksum function.
///
/// The same construction as `predict_core`'s `stable_fingerprint` (FNV-1a,
/// offset basis `0xcbf29ce484222325`), duplicated here because the
/// dependency arrow points the other way: `predict_core` consumes this
/// crate.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The four kinds of artifact a prediction session persists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// A sampled subgraph (`SampleArtifact`).
    Sample,
    /// A transformed sample-run profile (`SampleRunArtifact`).
    SampleRun,
    /// A trained cost model (`TrainedModel`).
    Model,
    /// A full-dataset actual run (`WorkloadRun`), cached for evaluation.
    ActualRun,
}

impl ArtifactKind {
    /// Every kind, for sweeps in tests and tooling.
    pub const ALL: [ArtifactKind; 4] = [
        ArtifactKind::Sample,
        ArtifactKind::SampleRun,
        ArtifactKind::Model,
        ArtifactKind::ActualRun,
    ];

    /// Stable directory / manifest name for this kind.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Sample => "sample",
            ArtifactKind::SampleRun => "sample_run",
            ArtifactKind::Model => "model",
            ArtifactKind::ActualRun => "actual_run",
        }
    }
}

/// The self-describing header persisted in front of every payload.
///
/// Field semantics are part of the on-disk contract documented in
/// `docs/ARCHITECTURE.md`; extend it only alongside a [`SCHEMA_VERSION`]
/// bump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Artifact schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// [`ArtifactKind::name`] of the stored artifact.
    pub kind: String,
    /// Full logical key (not just its hash), so filename collisions read as
    /// misses instead of wrong artifacts.
    pub key: String,
    /// Provenance hash binding the artifact to the dataset (label + graph
    /// shape) it was computed from; a mismatch is a stale miss.
    pub provenance: u64,
    /// FNV-1a of the *uncompressed* payload bytes.
    pub payload_checksum: u64,
    /// Length of the compressed payload that follows the header.
    pub compressed_len: u64,
    /// Expected length after decompression.
    pub uncompressed_len: u64,
}

/// Why a [`ArtifactStore::get`] returned nothing; [`ArtifactStore::get_explained`]
/// surfaces this for stats and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissReason {
    /// No file for this key.
    Absent,
    /// File existed but failed validation and was quarantined.
    Quarantined,
    /// Manifest was readable but belongs to a different provenance, schema
    /// version, or (filename-collision case) a different full key.
    Stale,
}

/// Counters the store publishes into the process-global metrics registry.
struct StoreMetrics {
    reads: Arc<Counter>,
    writes: Arc<Counter>,
    hits: Arc<Counter>,
    bytes: Arc<Counter>,
    quarantined: Arc<Counter>,
}

impl StoreMetrics {
    fn new() -> Self {
        let reg = registry();
        StoreMetrics {
            reads: reg.counter("store.reads"),
            writes: reg.counter("store.writes"),
            hits: reg.counter("store.hits"),
            bytes: reg.counter("store.bytes"),
            quarantined: reg.counter("store.quarantined"),
        }
    }
}

/// A directory-backed, checksummed, compressed artifact store.
///
/// Cheap to share: wrap it in an [`Arc`] and hand clones to every session.
/// All methods take `&self`; concurrent writers of the *same* key both
/// publish complete files and the last rename wins, which is safe because
/// artifacts are deterministic functions of their key + provenance.
pub struct ArtifactStore {
    root: PathBuf,
    tmp_counter: AtomicU64,
    metrics: StoreMetrics,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("root", &self.root)
            .finish()
    }
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root` and sweeps any
    /// in-flight temp files a crashed writer left behind.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ArtifactStore> {
        let root = root.into();
        for kind in ArtifactKind::ALL {
            fs::create_dir_all(root.join(kind.name()))?;
        }
        fs::create_dir_all(root.join("quarantine"))?;
        let tmp = root.join("tmp");
        fs::create_dir_all(&tmp)?;
        // A crash mid-write leaves only unpublished `.tmp` garbage; sweeping
        // it here is the whole recovery story for partial writes.
        if let Ok(entries) = fs::read_dir(&tmp) {
            for entry in entries.flatten() {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(ArtifactStore {
            root,
            tmp_counter: AtomicU64::new(0),
            metrics: StoreMetrics::new(),
        })
    }

    /// The directory this store lives in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where corrupt files are moved; exposed for tests and operators.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// The path `put` publishes to for `(kind, key)` — exposed so tests and
    /// the CI corruption step can target a specific artifact file.
    pub fn artifact_path(&self, kind: ArtifactKind, key: &str) -> PathBuf {
        self.root
            .join(kind.name())
            .join(format!("{:016x}.art", checksum(key.as_bytes())))
    }

    /// Number of quarantined files currently parked under `quarantine/`.
    pub fn quarantined_files(&self) -> usize {
        fs::read_dir(self.quarantine_dir())
            .map(|d| d.flatten().count())
            .unwrap_or(0)
    }

    /// Number of published artifacts of `kind`.
    pub fn artifact_count(&self, kind: ArtifactKind) -> usize {
        fs::read_dir(self.root.join(kind.name()))
            .map(|d| d.flatten().count())
            .unwrap_or(0)
    }

    /// Serializes, compresses and atomically publishes one artifact.
    ///
    /// The payload is the binary encoding ([`codec`]) of `value`'s serde
    /// `Value` tree, compressed with the vendored `lz4_flex` block codec.
    /// Publication is write-to-temp + rename, so readers never observe a
    /// partial file. Errors are returned (not panicked) so callers can
    /// degrade to memory-only operation.
    pub fn put<T: Serialize + ?Sized>(
        &self,
        kind: ArtifactKind,
        key: &str,
        provenance: u64,
        value: &T,
    ) -> io::Result<()> {
        let _span = span("store.write");
        let payload = encode_value(&value.serialize_value());
        let compressed = lz4_flex::compress_prepend_size(&payload);

        let manifest = Manifest {
            schema_version: SCHEMA_VERSION,
            kind: kind.name().to_string(),
            key: key.to_string(),
            provenance,
            payload_checksum: checksum(&payload),
            compressed_len: compressed.len() as u64,
            uncompressed_len: payload.len() as u64,
        };
        let manifest_json = serde_json::to_string(&manifest)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let manifest_bytes = manifest_json.as_bytes();

        let mut file_bytes =
            Vec::with_capacity(4 + 4 + 4 + manifest_bytes.len() + 8 + compressed.len());
        file_bytes.extend_from_slice(&MAGIC);
        file_bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        file_bytes.extend_from_slice(&(manifest_bytes.len() as u32).to_le_bytes());
        file_bytes.extend_from_slice(manifest_bytes);
        file_bytes.extend_from_slice(&checksum(manifest_bytes).to_le_bytes());
        file_bytes.extend_from_slice(&compressed);

        // Unique within the process via the counter, across processes via
        // the pid; collisions would only race identical content anyway.
        let tmp_name = format!(
            "{:016x}-{}-{}.tmp",
            checksum(key.as_bytes()),
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        );
        let tmp_path = self.root.join("tmp").join(tmp_name);
        {
            let mut file = fs::File::create(&tmp_path)?;
            file.write_all(&file_bytes)?;
            file.sync_all()?;
        }
        let final_path = self.artifact_path(kind, key);
        fs::rename(&tmp_path, &final_path).inspect_err(|_| {
            let _ = fs::remove_file(&tmp_path);
        })?;

        self.metrics.writes.incr();
        self.metrics.bytes.add(file_bytes.len() as u64);
        Ok(())
    }

    /// Reads one artifact back as a serde `Value` tree, or `None` on miss.
    ///
    /// Every validation failure (bad magic, truncated header, manifest or
    /// payload checksum mismatch, undecodable payload) quarantines the file
    /// and reports a miss; stale provenance/schema and filename-collision
    /// key mismatches report a miss and leave the file for the write-through
    /// to overwrite.
    pub fn get(&self, kind: ArtifactKind, key: &str, provenance: u64) -> Option<Value> {
        self.get_explained(kind, key, provenance).0
    }

    /// [`get`](Self::get), also reporting why a lookup missed.
    pub fn get_explained(
        &self,
        kind: ArtifactKind,
        key: &str,
        provenance: u64,
    ) -> (Option<Value>, Option<MissReason>) {
        let _span = span("store.read");
        self.metrics.reads.incr();
        let path = self.artifact_path(kind, key);
        let mut bytes = Vec::new();
        match fs::File::open(&path) {
            Ok(mut file) => {
                if file.read_to_end(&mut bytes).is_err() {
                    self.quarantine(&path, "unreadable file");
                    return (None, Some(MissReason::Quarantined));
                }
            }
            Err(_) => return (None, Some(MissReason::Absent)),
        }

        match self.parse_file(&bytes, kind, key, provenance) {
            Ok(ParseOutcome::Hit(value)) => {
                self.metrics.hits.incr();
                (Some(value), None)
            }
            Ok(ParseOutcome::Stale) => (None, Some(MissReason::Stale)),
            Err(reason) => {
                self.quarantine(&path, reason);
                (None, Some(MissReason::Quarantined))
            }
        }
    }

    /// Typed convenience over [`get`](Self::get): decodes the `Value` tree
    /// through the artifact's `Deserialize` impl. A tree that no longer
    /// matches the Rust shape (schema drift without a version bump) reads as
    /// a miss with a warning rather than an error.
    pub fn get_typed<T: Deserialize>(
        &self,
        kind: ArtifactKind,
        key: &str,
        provenance: u64,
    ) -> Option<T> {
        let value = self.get(kind, key, provenance)?;
        match T::deserialize_value(&value) {
            Ok(artifact) => Some(artifact),
            Err(err) => {
                diag!(
                    Warn,
                    "store: {} artifact for key `{}` failed typed decode ({}); recomputing",
                    kind.name(),
                    key,
                    err
                );
                None
            }
        }
    }

    fn parse_file(
        &self,
        bytes: &[u8],
        kind: ArtifactKind,
        key: &str,
        provenance: u64,
    ) -> Result<ParseOutcome, &'static str> {
        if bytes.len() < 12 {
            return Err("file shorter than header");
        }
        if bytes[0..4] != MAGIC {
            return Err("bad magic");
        }
        let format = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if format != FORMAT_VERSION {
            return Err("unsupported container format version");
        }
        let mlen = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
        if mlen > MAX_MANIFEST_LEN {
            return Err("manifest length implausibly large");
        }
        let manifest_end = 12usize
            .checked_add(mlen)
            .ok_or("manifest length overflow")?;
        let check_end = manifest_end
            .checked_add(8)
            .ok_or("manifest length overflow")?;
        if check_end > bytes.len() {
            return Err("truncated manifest");
        }
        let manifest_bytes = &bytes[12..manifest_end];
        let stored_check = u64::from_le_bytes(bytes[manifest_end..check_end].try_into().unwrap());
        if checksum(manifest_bytes) != stored_check {
            return Err("manifest checksum mismatch");
        }
        let manifest_json =
            std::str::from_utf8(manifest_bytes).map_err(|_| "manifest not UTF-8")?;
        let manifest: Manifest =
            serde_json::from_str(manifest_json).map_err(|_| "manifest not parseable")?;

        // Staleness checks come after integrity checks: the file is sound,
        // it just is not the artifact the caller wants.
        if manifest.schema_version != SCHEMA_VERSION
            || manifest.kind != kind.name()
            || manifest.key != key
            || manifest.provenance != provenance
        {
            return Ok(ParseOutcome::Stale);
        }

        let compressed = &bytes[check_end..];
        if compressed.len() as u64 != manifest.compressed_len {
            return Err("payload length mismatch (truncated write)");
        }
        let payload = lz4_flex::decompress_size_prepended(compressed)
            .map_err(|_| "payload decompression failed")?;
        if payload.len() as u64 != manifest.uncompressed_len {
            return Err("decompressed length mismatch");
        }
        if checksum(&payload) != manifest.payload_checksum {
            return Err("payload checksum mismatch");
        }
        let value = decode_value(&payload).map_err(|_| "payload decode failed")?;
        Ok(ParseOutcome::Hit(value))
    }

    fn quarantine(&self, path: &Path, reason: &str) {
        self.metrics.quarantined.incr();
        let file_name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("unknown.art");
        // Suffix with a counter so repeated corruption of the same key never
        // silently overwrites earlier evidence.
        let dest = self.quarantine_dir().join(format!(
            "{}.{}.quarantined",
            file_name,
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let moved = fs::rename(path, &dest).is_ok();
        if !moved {
            // Cross-device or permission failure: fall back to deletion so a
            // poisoned file cannot wedge every future read of this key.
            let _ = fs::remove_file(path);
        }
        diag!(
            Warn,
            "store: quarantined corrupt artifact {} ({reason}); will recompute",
            path.display()
        );
    }
}

enum ParseOutcome {
    Hit(Value),
    Stale,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// Fresh per-test directory under the target tmpdir; best-effort cleanup
    /// on drop.
    struct TempStoreDir(PathBuf);

    impl TempStoreDir {
        fn new() -> Self {
            let path = std::env::temp_dir().join(format!(
                "predict_store_test_{}_{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&path).unwrap();
            TempStoreDir(path)
        }
    }

    impl Drop for TempStoreDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn tree() -> Value {
        Value::Map(vec![
            ("iterations".to_string(), Value::UInt(17)),
            ("threshold".to_string(), Value::Float(0.000123)),
            (
                "profile".to_string(),
                Value::Seq(vec![Value::Float(1.5), Value::Float(2.5), Value::Null]),
            ),
        ])
    }

    #[test]
    fn put_get_roundtrip() {
        let dir = TempStoreDir::new();
        let store = ArtifactStore::open(&dir.0).unwrap();
        store
            .put(ArtifactKind::Model, "model-key", 42, &tree())
            .unwrap();
        assert_eq!(
            store.get(ArtifactKind::Model, "model-key", 42),
            Some(tree())
        );
        assert_eq!(store.artifact_count(ArtifactKind::Model), 1);
    }

    #[test]
    fn absent_is_a_plain_miss() {
        let dir = TempStoreDir::new();
        let store = ArtifactStore::open(&dir.0).unwrap();
        let (value, reason) = store.get_explained(ArtifactKind::Sample, "nope", 0);
        assert!(value.is_none());
        assert_eq!(reason, Some(MissReason::Absent));
        assert_eq!(store.quarantined_files(), 0);
    }

    #[test]
    fn provenance_mismatch_is_stale_not_quarantined() {
        let dir = TempStoreDir::new();
        let store = ArtifactStore::open(&dir.0).unwrap();
        store.put(ArtifactKind::Sample, "k", 1, &tree()).unwrap();
        let (value, reason) = store.get_explained(ArtifactKind::Sample, "k", 2);
        assert!(value.is_none());
        assert_eq!(reason, Some(MissReason::Stale));
        assert_eq!(store.quarantined_files(), 0);
        // The artifact is still present and readable under its own provenance.
        assert!(store.get(ArtifactKind::Sample, "k", 1).is_some());
    }

    #[test]
    fn truncated_file_quarantines_and_recovers() {
        let dir = TempStoreDir::new();
        let store = ArtifactStore::open(&dir.0).unwrap();
        store
            .put(ArtifactKind::SampleRun, "run", 7, &tree())
            .unwrap();
        let path = store.artifact_path(ArtifactKind::SampleRun, "run");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let (value, reason) = store.get_explained(ArtifactKind::SampleRun, "run", 7);
        assert!(value.is_none());
        assert_eq!(reason, Some(MissReason::Quarantined));
        assert!(!path.exists(), "corrupt file must be moved aside");
        assert_eq!(store.quarantined_files(), 1);

        // Recompute-and-overwrite restores service.
        store
            .put(ArtifactKind::SampleRun, "run", 7, &tree())
            .unwrap();
        assert_eq!(store.get(ArtifactKind::SampleRun, "run", 7), Some(tree()));
    }

    #[test]
    fn every_single_byte_flip_degrades_cleanly() {
        let dir = TempStoreDir::new();
        let store = ArtifactStore::open(&dir.0).unwrap();
        store.put(ArtifactKind::Model, "flip", 3, &tree()).unwrap();
        let path = store.artifact_path(ArtifactKind::Model, "flip");
        let original = fs::read(&path).unwrap();
        for i in 0..original.len() {
            let mut corrupt = original.clone();
            corrupt[i] ^= 0x20;
            fs::write(&path, &corrupt).unwrap();
            // Must not panic; must never return a value different from the
            // original tree (a flip that survives all checksums could only
            // be inside JSON whitespace, which FNV catches anyway).
            if let Some(v) = store.get(ArtifactKind::Model, "flip", 3) {
                assert_eq!(v, tree(), "flip at byte {i} silently altered the artifact");
            }
        }
        // Restore for hygiene.
        fs::write(&path, &original).ok();
    }

    #[test]
    fn open_sweeps_stale_tmp_files() {
        let dir = TempStoreDir::new();
        {
            let store = ArtifactStore::open(&dir.0).unwrap();
            store.put(ArtifactKind::Sample, "keep", 1, &tree()).unwrap();
        }
        // Simulate a crash mid-write: garbage left in tmp/.
        fs::write(dir.0.join("tmp").join("dead.tmp"), b"partial").unwrap();
        let store = ArtifactStore::open(&dir.0).unwrap();
        assert_eq!(fs::read_dir(dir.0.join("tmp")).unwrap().count(), 0);
        // Published artifacts survive the sweep.
        assert!(store.get(ArtifactKind::Sample, "keep", 1).is_some());
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let dir = TempStoreDir::new();
        let store = ArtifactStore::open(&dir.0).unwrap();
        for i in 0..20u64 {
            let key = format!("key-{i}");
            store
                .put(ArtifactKind::Model, &key, 9, &Value::UInt(i))
                .unwrap();
        }
        for i in 0..20u64 {
            let key = format!("key-{i}");
            assert_eq!(
                store.get(ArtifactKind::Model, &key, 9),
                Some(Value::UInt(i))
            );
        }
    }

    #[test]
    fn concurrent_writers_and_readers_settle() {
        let dir = TempStoreDir::new();
        let store = std::sync::Arc::new(ArtifactStore::open(&dir.0).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..25u64 {
                        let key = format!("k-{}", (t * 25 + i) % 10);
                        store
                            .put(ArtifactKind::ActualRun, &key, 5, &Value::UInt(i))
                            .unwrap();
                        let _ = store.get(ArtifactKind::ActualRun, &key, 5);
                    }
                });
            }
        });
        // All ten keys readable, none quarantined: partial files are never
        // observable.
        for k in 0..10 {
            assert!(store
                .get(ArtifactKind::ActualRun, &format!("k-{k}"), 5)
                .is_some());
        }
        assert_eq!(store.quarantined_files(), 0);
    }
}
